#include "core/pure_drivers.h"

#include <gtest/gtest.h>

#include "graph/query_extractor.h"
#include "match/engine.h"
#include "signature/builders.h"
#include "tests/test_fixtures.h"

namespace psi::core {
namespace {

TEST(PureDriversTest, Figure1BothStrategies) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const auto gs = signature::BuildSignatures(
      g, signature::Method::kMatrix, 2, g.num_labels());
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  for (const PureStrategy strategy :
       {PureStrategy::kOptimistic, PureStrategy::kPessimistic}) {
    PureDriverOptions options;
    options.strategy = strategy;
    const PureDriverResult result = EvaluatePure(g, gs, q, options);
    EXPECT_EQ(result.valid_nodes, (std::vector<graph::NodeId>{0, 5}));
    EXPECT_TRUE(result.complete);
    EXPECT_GE(result.seconds, 0.0);
  }
}

// The QueryContext::feasible == false path must short-circuit both pure
// strategies to a clean empty-and-complete result: an out-of-alphabet
// label and an in-alphabet label no node carries are both infeasible.
TEST(PureDriversTest, InfeasibleQueryEmptyForBothStrategies) {
  graph::GraphBuilder b;
  b.AddNode(0);
  b.AddNode(2);  // label 1 exists in the alphabet but has zero frequency
  b.AddEdge(0, 1);
  const graph::Graph g = std::move(b).Build();
  const auto gs = signature::BuildSignatures(
      g, signature::Method::kMatrix, 2, g.num_labels());

  for (const graph::Label missing : {graph::Label{1}, graph::Label{50}}) {
    graph::QueryGraph q;
    q.AddNode(missing);
    q.set_pivot(0);
    for (const PureStrategy strategy :
         {PureStrategy::kOptimistic, PureStrategy::kPessimistic}) {
      PureDriverOptions options;
      options.strategy = strategy;
      const PureDriverResult result = EvaluatePure(g, gs, q, options);
      EXPECT_TRUE(result.valid_nodes.empty()) << "label " << missing;
      EXPECT_TRUE(result.complete) << "label " << missing;
      EXPECT_EQ(result.stats.recursive_calls, 0u)
          << "infeasible must not search";
    }
  }
}

class PureDriverAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PureDriverAgreementTest, BothStrategiesMatchGroundTruth) {
  const graph::Graph g =
      psi::testing::MakeRandomGraph(250, 800, 4, GetParam());
  const auto gs = signature::BuildSignatures(
      g, signature::Method::kMatrix, 2, g.num_labels());
  graph::QueryExtractor extractor(g);
  util::Rng rng(GetParam() + 1);
  const graph::QueryGraph q = extractor.Extract(4, rng);
  if (q.num_nodes() != 4) GTEST_SKIP();

  match::BasicEngine basic(g);
  const auto truth =
      basic.ProjectPivot(q, match::MatchingEngine::Options());
  ASSERT_TRUE(truth.complete);

  for (const PureStrategy strategy :
       {PureStrategy::kOptimistic, PureStrategy::kPessimistic}) {
    PureDriverOptions options;
    options.strategy = strategy;
    const PureDriverResult result = EvaluatePure(g, gs, q, options);
    EXPECT_EQ(result.valid_nodes, truth.pivot_matches);
    EXPECT_TRUE(result.complete);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PureDriverAgreementTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(PureDriversTest, DeadlineMarksIncomplete) {
  const graph::Graph g = psi::testing::MakeRandomGraph(500, 3000, 2, 99);
  const auto gs = signature::BuildSignatures(
      g, signature::Method::kMatrix, 2, g.num_labels());
  graph::QueryGraph q;
  graph::NodeId prev = q.AddNode(0);
  q.set_pivot(prev);
  for (int i = 0; i < 5; ++i) {
    const graph::NodeId next = q.AddNode(0);
    q.AddEdge(prev, next);
    prev = next;
  }
  PureDriverOptions options;
  options.strategy = PureStrategy::kPessimistic;
  options.deadline = util::Deadline::After(-1.0);
  const PureDriverResult result = EvaluatePure(g, gs, q, options);
  EXPECT_FALSE(result.complete);
}

}  // namespace
}  // namespace psi::core
