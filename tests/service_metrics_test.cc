#include "service/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace psi::service {
namespace {

QueryResponse MakeResponse(RequestStatus status, double latency_seconds) {
  QueryResponse response;
  response.status = status;
  response.latency_seconds = latency_seconds;
  return response;
}

TEST(LatencyReservoirTest, EmptySummaryIsZero) {
  LatencyReservoir reservoir;
  const auto s = reservoir.Summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(LatencyReservoirTest, QuantilesOnKnownSamples) {
  LatencyReservoir reservoir(128);
  // 1..100 ms: p50 ~ 50.5ms, p95 ~ 95ms, max = 100ms.
  for (int i = 1; i <= 100; ++i) reservoir.Record(i * 1e-3);
  const auto s = reservoir.Summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.mean, 50.5e-3, 1e-9);
  EXPECT_NEAR(s.p50, 50.5e-3, 1e-3);
  EXPECT_NEAR(s.p95, 95e-3, 2e-3);
  EXPECT_NEAR(s.p99, 99e-3, 2e-3);
  EXPECT_DOUBLE_EQ(s.max, 100e-3);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
}

TEST(LatencyReservoirTest, WindowSlidesPastCapacity) {
  LatencyReservoir reservoir(4);
  for (int i = 0; i < 100; ++i) reservoir.Record(1.0);
  reservoir.Record(5.0);
  const auto s = reservoir.Summarize();
  EXPECT_EQ(s.count, 101u);  // total observations, not window size
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(LatencyReservoirTest, ConcurrentRecordsAllCounted) {
  LatencyReservoir reservoir(1024);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&reservoir] {
      for (int i = 0; i < 1000; ++i) reservoir.Record(1e-3);
    });
  }
  for (auto& thread : threads) thread.join();
  const auto s = reservoir.Summarize();
  EXPECT_EQ(s.count, 4000u);
  EXPECT_DOUBLE_EQ(s.p50, 1e-3);
}

TEST(MetricsRegistryTest, OutcomesRouteToStatusBuckets) {
  MetricsRegistry metrics;
  for (int i = 0; i < 3; ++i) metrics.RecordAdmitted();
  metrics.RecordOutcome(MakeResponse(RequestStatus::kOk, 1e-3));
  metrics.RecordOutcome(MakeResponse(RequestStatus::kTimeout, 2e-3));
  metrics.RecordOutcome(MakeResponse(RequestStatus::kInvalid, 1e-6));
  const MetricsSnapshot s = metrics.Snapshot();
  EXPECT_EQ(s.admitted, 3u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.timed_out, 1u);
  EXPECT_EQ(s.invalid, 1u);
  EXPECT_EQ(s.Settled(), s.admitted);
  EXPECT_EQ(s.latency.count, 3u);
}

TEST(MetricsRegistryTest, RejectedRecordsNoLatencyOrEngineWork) {
  MetricsRegistry metrics;
  QueryResponse shed = MakeResponse(RequestStatus::kRejected, 9.0);
  shed.cache_hits = 7;
  shed.num_candidates = 11;
  metrics.RecordOutcome(shed, /*method_recoveries=*/2, /*plan_fallbacks=*/3);
  const MetricsSnapshot s = metrics.Snapshot();
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.Settled(), 0u);
  EXPECT_EQ(s.latency.count, 0u);
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.method_recoveries, 0u);
  EXPECT_EQ(s.plan_fallbacks, 0u);
  EXPECT_EQ(s.candidates_evaluated, 0u);
}

TEST(MetricsRegistryTest, EngineCountersAggregateAcrossOutcomes) {
  MetricsRegistry metrics;
  QueryResponse a = MakeResponse(RequestStatus::kOk, 1e-3);
  a.cache_hits = 5;
  a.num_candidates = 10;
  QueryResponse b = MakeResponse(RequestStatus::kTimeout, 2e-3);
  b.cache_hits = 2;
  b.num_candidates = 4;
  metrics.RecordOutcome(a, 1, 0);
  metrics.RecordOutcome(b, 0, 2);
  const MetricsSnapshot s = metrics.Snapshot();
  EXPECT_EQ(s.cache_hits, 7u);
  EXPECT_EQ(s.candidates_evaluated, 14u);
  EXPECT_EQ(s.method_recoveries, 1u);
  EXPECT_EQ(s.plan_fallbacks, 2u);
}

// Regression for the admission/settling ordering bug: PsiService used to
// count an admission only after the task was enqueued, so a fast worker
// could settle the request first and a concurrent Snapshot() observed
// Settled() > admitted. The fix counts admission up front and revokes it
// with UndoAdmitted() when the enqueue is shed.
TEST(MetricsRegistryTest, UndoAdmittedRevokesProvisionalAdmission) {
  MetricsRegistry metrics;
  metrics.RecordAdmitted();  // provisional, enqueue will "fail"
  metrics.UndoAdmitted();
  metrics.RecordRejected();
  metrics.RecordAdmitted();  // a real admission afterwards
  metrics.RecordOutcome(MakeResponse(RequestStatus::kOk, 1e-3));
  const MetricsSnapshot s = metrics.Snapshot();
  EXPECT_EQ(s.admitted, 1u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.Settled(), 1u);
}

// Snapshot consistency contract under concurrent writers (see the class
// comment in service/metrics.h): every snapshot, taken at any instant,
// satisfies latency.count <= Settled() <= admitted. The heavier TSan-aimed
// variant lives in race_harness_test.cc; this one runs everywhere.
TEST(MetricsRegistryTest, SnapshotInvariantsHoldUnderConcurrentWriters) {
  MetricsRegistry metrics;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 3000;

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&metrics, t] {
      for (int i = 0; i < kPerWriter; ++i) {
        metrics.RecordAdmitted();
        const RequestStatus status = (t + i) % 5 == 0
                                         ? RequestStatus::kCancelled
                                         : RequestStatus::kOk;
        metrics.RecordOutcome(MakeResponse(status, 1e-6));
      }
    });
  }
  // Snapshot continuously while the writers run.
  for (int round = 0; round < 2000; ++round) {
    const MetricsSnapshot s = metrics.Snapshot();
    ASSERT_LE(s.latency.count, s.Settled());
    ASSERT_LE(s.Settled(), s.admitted);
  }
  for (auto& writer : writers) writer.join();

  const MetricsSnapshot s = metrics.Snapshot();
  EXPECT_EQ(s.admitted, static_cast<uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(s.Settled(), s.admitted);
  EXPECT_EQ(s.latency.count, s.admitted);
}

TEST(MetricsSnapshotTest, ToStringMentionsEverySection) {
  MetricsRegistry metrics;
  metrics.RecordAdmitted();
  metrics.RecordOutcome(MakeResponse(RequestStatus::kOk, 1e-3));
  const std::string text = metrics.Snapshot().ToString();
  EXPECT_NE(text.find("admitted=1"), std::string::npos);
  EXPECT_NE(text.find("completed=1"), std::string::npos);
  EXPECT_NE(text.find("search: restarts="), std::string::npos);
  EXPECT_NE(text.find("work_steals="), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
}

// Every counter in MetricsSnapshot must be printed by ToString with a
// distinguishable value — a counter that exists but never surfaces in the
// dump is dead instrumentation (psi_check's metrics-pair rule enforces the
// pairing statically; this test pins the printed labels).
TEST(MetricsSnapshotTest, ToStringEmitsEveryCounter) {
  MetricsSnapshot s;
  s.admitted = 1;
  s.rejected = 2;
  s.retries = 3;
  s.completed = 4;
  s.timed_out = 5;
  s.cancelled = 6;
  s.invalid = 7;
  s.not_found = 8;
  s.cache_hits = 9;
  s.method_recoveries = 10;
  s.plan_fallbacks = 11;
  s.candidates_evaluated = 12;
  s.cache_mismatches = 13;
  s.search_restarts = 14;
  s.nogoods_recorded = 15;
  s.nogood_hits = 16;
  s.work_steals = 17;
  s.degraded_entries = 18;
  s.degraded_exits = 19;
  s.degraded_requests = 20;
  s.cache_bypass_entries = 21;
  s.cache_bypass_exits = 22;
  s.snapshot_publishes = 23;
  s.snapshot_swaps = 24;
  s.snapshot_retires = 25;
  s.snapshot_publish_failures = 26;
  s.batch_submitted = 27;
  s.batch_rejected = 28;
  s.batch_queries = 29;
  s.batch_context_hits = 30;
  s.batch_degraded = 31;

  const std::string text = s.ToString();
  const std::vector<std::string> expected = {
      "admitted=1",          "rejected=2",
      "retries=3",           "completed=4",
      "timed_out=5",         "cancelled=6",
      "invalid=7",           "not_found=8",
      "cache_hits=9",        "method_recoveries=10",
      "plan_fallbacks=11",   "candidates=12",
      "cache_mismatches=13", "restarts=14",
      "nogoods_recorded=15", "nogood_hits=16",
      "work_steals=17",      "entries=18",
      "exits=19",            "degraded_requests=20",
      "cache_bypass_entries=21", "cache_bypass_exits=22",
      "publishes=23",        "swaps=24",
      "retires=25",          "publish_failures=26",
      "batch_submitted=27",  "batch_rejected=28",
      "batch_queries=29",    "batch_context_hits=30",
      "batch_degraded=31",
  };
  for (const std::string& label : expected) {
    EXPECT_NE(text.find(label), std::string::npos)
        << "missing \"" << label << "\" in:\n" << text;
  }
}

// Batch-path recorders (DESIGN.md §17): one increment per batch unit, one
// per member query, with context hits and degradations as subsets of
// batch_queries.
TEST(MetricsRegistryTest, BatchRecordersAccumulate) {
  MetricsRegistry metrics;
  metrics.RecordBatchSubmitted();
  metrics.RecordBatchRejected();
  metrics.RecordBatchQuery(/*context_hit=*/true, /*degraded=*/false);
  metrics.RecordBatchQuery(/*context_hit=*/false, /*degraded=*/true);
  metrics.RecordBatchQuery(/*context_hit=*/false, /*degraded=*/false);
  const MetricsSnapshot s = metrics.Snapshot();
  EXPECT_EQ(s.batch_submitted, 1u);
  EXPECT_EQ(s.batch_rejected, 1u);
  EXPECT_EQ(s.batch_queries, 3u);
  EXPECT_EQ(s.batch_context_hits, 1u);
  EXPECT_EQ(s.batch_degraded, 1u);
  EXPECT_LE(s.batch_context_hits + s.batch_degraded, s.batch_queries);
}

TEST(MetricsSnapshotTest, SearchCoreCountersAggregate) {
  MetricsRegistry metrics;
  QueryResponse response = MakeResponse(RequestStatus::kOk, 1e-3);
  response.search_restarts = 3;
  response.nogoods_recorded = 5;
  response.nogood_hits = 7;
  response.work_steals = 11;
  metrics.RecordAdmitted();
  metrics.RecordOutcome(response);
  metrics.RecordAdmitted();
  metrics.RecordOutcome(response);
  const MetricsSnapshot s = metrics.Snapshot();
  EXPECT_EQ(s.search_restarts, 6u);
  EXPECT_EQ(s.nogoods_recorded, 10u);
  EXPECT_EQ(s.nogood_hits, 14u);
  EXPECT_EQ(s.work_steals, 22u);
}

// --- Per-shard labeled counters (DESIGN.md §13) ----------------------------

TEST(ShardCountersTest, DisabledByDefaultAndFlatContractUnchanged) {
  MetricsRegistry metrics;
  EXPECT_EQ(metrics.num_shards(), 0u);
  metrics.RecordAdmitted();
  metrics.RecordOutcome(MakeResponse(RequestStatus::kOk, 1e-3));
  const MetricsSnapshot s = metrics.Snapshot();
  EXPECT_TRUE(s.shards.empty()) << "flat consumers see no shard dimension";
  EXPECT_EQ(s.admitted, 1u);
  EXPECT_EQ(s.Settled(), 1u);
  EXPECT_EQ(s.ToString().find("shard "), std::string::npos);
}

TEST(ShardCountersTest, SnapshotRoundTripsPerShardCounters) {
  MetricsRegistry metrics;
  metrics.EnableShardCounters(3);
  ASSERT_EQ(metrics.num_shards(), 3u);
  for (int request = 0; request < 5; ++request) {
    metrics.RecordAdmitted();
    for (size_t shard = 0; shard < 3; ++shard) {
      metrics.RecordShardAdmitted(shard);
      metrics.RecordShardForwards(shard, shard * 10);
      metrics.RecordShardSettled(shard);
    }
    metrics.RecordOutcome(MakeResponse(RequestStatus::kOk, 1e-3));
  }
  const MetricsSnapshot s = metrics.Snapshot();
  ASSERT_EQ(s.shards.size(), 3u);
  for (size_t shard = 0; shard < 3; ++shard) {
    EXPECT_EQ(s.shards[shard].admitted, 5u);
    EXPECT_EQ(s.shards[shard].settled, 5u);
    EXPECT_EQ(s.shards[shard].cross_shard_forwards, shard * 10 * 5);
  }
  // Flat counters are untouched by the shard dimension.
  EXPECT_EQ(s.admitted, 5u);
  EXPECT_EQ(s.Settled(), 5u);
  const std::string text = s.ToString();
  EXPECT_NE(text.find("shard 0:"), std::string::npos);
  EXPECT_NE(text.find("shard 2:"), std::string::npos);
  EXPECT_NE(text.find("cross_shard_forwards=100"), std::string::npos);
}

TEST(ShardCountersTest, ConcurrentShardRecordsNeverTearInvariants) {
  MetricsRegistry metrics;
  metrics.EnableShardCounters(2);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 4000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&metrics] {
      for (int i = 0; i < kPerWriter; ++i) {
        const size_t shard = static_cast<size_t>(i) % 2;
        metrics.RecordShardAdmitted(shard);
        metrics.RecordShardForwards(shard, 1);
        metrics.RecordShardSettled(shard);
      }
    });
  }
  // Per-shard settled must never be observed above admitted mid-run.
  for (int round = 0; round < 2000; ++round) {
    const MetricsSnapshot s = metrics.Snapshot();
    for (const ShardCounterSnapshot& shard : s.shards) {
      ASSERT_LE(shard.settled, shard.admitted);
    }
  }
  for (auto& writer : writers) writer.join();
  const MetricsSnapshot s = metrics.Snapshot();
  ASSERT_EQ(s.shards.size(), 2u);
  for (const ShardCounterSnapshot& shard : s.shards) {
    EXPECT_EQ(shard.admitted, static_cast<uint64_t>(kWriters) * kPerWriter / 2);
    EXPECT_EQ(shard.settled, shard.admitted);
    EXPECT_EQ(shard.cross_shard_forwards, shard.admitted);
  }
}

}  // namespace
}  // namespace psi::service
