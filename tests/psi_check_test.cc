// Self-tests for tools/psi_check (DESIGN.md §15): lexer behavior, each
// rule's exact finding (rule id, file, line) against the seeded-violation
// fixture tree, waiver resolution, report formats, and process exit codes.
//
// PSI_CHECK_FIXTURE_DIR points at tests/fixtures/psi_check (set by the
// build); the trees under it are scan fodder, never compiled.

#include "tools/psi_check/checker.h"
#include "tools/psi_check/lexer.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace psi::check {
namespace {

const char* MiniRepo() { return PSI_CHECK_FIXTURE_DIR "/mini_repo"; }
const char* CleanRepo() { return PSI_CHECK_FIXTURE_DIR "/clean_repo"; }

// --- Lexer -----------------------------------------------------------------

TEST(LexerTest, TokensIncludesAndScopeResolution) {
  const LexedFile lexed = Lex(
      "#include \"util/mutex.h\"\n"
      "#include <vector>\n"
      "int util::Count() { return 42; }\n");
  ASSERT_EQ(lexed.includes.size(), 2u);
  EXPECT_EQ(lexed.includes[0].path, "util/mutex.h");
  EXPECT_EQ(lexed.includes[0].line, 1);
  EXPECT_FALSE(lexed.includes[0].system);
  EXPECT_EQ(lexed.includes[1].path, "vector");
  EXPECT_TRUE(lexed.includes[1].system);

  // `::` is one token; line numbers survive the directives above.
  const auto scope = std::find_if(
      lexed.tokens.begin(), lexed.tokens.end(),
      [](const Token& t) { return t.kind == Token::Kind::kPunct &&
                                  t.text == "::"; });
  ASSERT_NE(scope, lexed.tokens.end());
  EXPECT_EQ(scope->line, 3);
  EXPECT_EQ(lexed.tokens.back().kind, Token::Kind::kEnd);
}

TEST(LexerTest, StringContentsAreTokensButCommentsAreNot) {
  const LexedFile lexed = Lex(
      "const char* s = \"rand() inside a string\";\n"
      "// rand() inside a comment\n");
  size_t ident_rands = 0;
  size_t string_tokens = 0;
  for (const Token& t : lexed.tokens) {
    if (t.kind == Token::Kind::kIdent && t.text == "rand") ++ident_rands;
    if (t.kind == Token::Kind::kString) ++string_tokens;
  }
  // Neither occurrence of rand produces an identifier token.
  EXPECT_EQ(ident_rands, 0u);
  ASSERT_EQ(string_tokens, 1u);
}

TEST(LexerTest, ParsesWellFormedWaiver) {
  const LexedFile lexed = Lex(
      "int x;  // psi-check: allow(lock-guard, determinism) -- both rules\n");
  ASSERT_EQ(lexed.waivers.size(), 1u);
  const Waiver& w = lexed.waivers[0];
  EXPECT_FALSE(w.malformed);
  EXPECT_EQ(w.line, 1);
  ASSERT_EQ(w.rules.size(), 2u);
  EXPECT_EQ(w.rules[0], "lock-guard");
  EXPECT_EQ(w.rules[1], "determinism");
  EXPECT_EQ(w.reason, "both rules");
}

TEST(LexerTest, FlagsMalformedWaivers) {
  const LexedFile missing_reason =
      Lex("// psi-check: allow(layering)\n");
  ASSERT_EQ(missing_reason.waivers.size(), 1u);
  EXPECT_TRUE(missing_reason.waivers[0].malformed);

  const LexedFile empty_reason =
      Lex("// psi-check: allow(layering) -- \n");
  ASSERT_EQ(empty_reason.waivers.size(), 1u);
  EXPECT_TRUE(empty_reason.waivers[0].malformed);

  const LexedFile bad_shape = Lex("// psi-check: suppress everything\n");
  ASSERT_EQ(bad_shape.waivers.size(), 1u);
  EXPECT_TRUE(bad_shape.waivers[0].malformed);
}

// --- Rules against the seeded fixture tree ---------------------------------

class MiniRepoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(checker_.Load(MiniRepo())) << checker_.error();
    checker_.RunAll();
  }

  /// All violations matching `rule` at `file` (root-relative).
  std::vector<Violation> At(const std::string& rule,
                            const std::string& file) const {
    std::vector<Violation> out;
    for (const Violation& v : checker_.violations()) {
      if (v.rule == rule && v.file == file) out.push_back(v);
    }
    return out;
  }

  Checker checker_;
};

TEST_F(MiniRepoTest, ExactFindingCountAndNoExtras) {
  // 14 seeded findings; src/util/clean.h and src/util/hooks.cc contribute
  // none. Any change here means a rule drifted.
  EXPECT_EQ(checker_.violations().size(), 14u);
  EXPECT_EQ(checker_.unwaived_count(), 13);
  EXPECT_TRUE(At("lock-guard", "src/util/clean.h").empty());
  for (const Violation& v : checker_.violations()) {
    EXPECT_NE(v.file, "src/util/clean.h") << v.message;
    EXPECT_NE(v.file, "src/util/hooks.cc") << v.message;
  }
}

TEST_F(MiniRepoTest, LayeringFlagsBackEdgeInclude) {
  const auto vs = At("layering", "src/graph/bad_include.cc");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].line, 2);
  EXPECT_FALSE(vs[0].waived);
  EXPECT_NE(vs[0].message.find("core/engine.h"), std::string::npos);
}

TEST_F(MiniRepoTest, DeterminismFlagsRandAndUnorderedIteration) {
  const auto vs = At("determinism", "src/match/nondet.cc");
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].line, 7);
  EXPECT_NE(vs[0].message.find("rand()"), std::string::npos);
  EXPECT_EQ(vs[1].line, 8);
  EXPECT_NE(vs[1].message.find("'items'"), std::string::npos);
}

TEST_F(MiniRepoTest, LockGuardFlagsUnannotatedFieldOnly) {
  const auto vs = At("lock-guard", "src/core/bad_lock.h");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].line, 8);
  EXPECT_NE(vs[0].message.find("'counter_'"), std::string::npos);
  EXPECT_NE(vs[0].message.find("'LockHog'"), std::string::npos);
}

TEST_F(MiniRepoTest, FaultSiteFlagsRawLiteralsAtHookAndShadow) {
  const auto vs = At("fault-site", "src/service/raw_hook.cc");
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].line, 2);  // hook called with a string literal
  EXPECT_NE(vs[0].message.find("raw string literal"), std::string::npos);
  EXPECT_EQ(vs[1].line, 3);  // bare literal shadowing a registry value
  EXPECT_NE(vs[1].message.find("test.site.beta"), std::string::npos);
}

TEST_F(MiniRepoTest, FaultSiteCrossReferencesRegistryEntries) {
  // kTestSiteBeta is undocumented, untested and unhooked: three findings
  // on its declaration line. kTestSiteAlpha satisfies all three and gets
  // none.
  const auto vs = At("fault-site", "src/util/fault_sites.h");
  ASSERT_EQ(vs.size(), 3u);
  for (const Violation& v : vs) {
    EXPECT_EQ(v.line, 6);
  }
  EXPECT_NE(vs[0].message.find("test.site.beta"), std::string::npos);
  EXPECT_NE(vs[0].message.find("DESIGN.md"), std::string::npos);
  EXPECT_NE(vs[1].message.find("kTestSiteBeta"), std::string::npos);
  EXPECT_NE(vs[2].message.find("kTestSiteBeta"), std::string::npos);
  EXPECT_NE(vs[1].message.find("not exercised by any test"),
            std::string::npos);
  EXPECT_NE(vs[2].message.find("has no PSI_INJECT_FAULT"), std::string::npos);
}

TEST_F(MiniRepoTest, MetricsPairFlagsAllThreeMismatchKinds) {
  const auto vs = At("metrics-pair", "src/service/metrics.h");
  ASSERT_EQ(vs.size(), 3u);
  EXPECT_EQ(vs[0].line, 5);  // in the snapshot, absent from ToString
  EXPECT_NE(vs[0].message.find("'missing_in_tostring'"), std::string::npos);
  EXPECT_NE(vs[0].message.find("ToString"), std::string::npos);
  EXPECT_EQ(vs[1].line, 6);  // printed, asserted nowhere
  EXPECT_NE(vs[1].message.find("'missing_in_tests'"), std::string::npos);
  EXPECT_NE(vs[1].message.find("not asserted in any test"),
            std::string::npos);
  EXPECT_EQ(vs[2].line, 14);  // registry atomic with no snapshot field
  EXPECT_NE(vs[2].message.find("'orphan_counter_'"), std::string::npos);
}

TEST_F(MiniRepoTest, WaiverSuppressesButStillReports) {
  const auto vs = At("determinism", "src/graph/waived.cc");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].line, 6);
  EXPECT_TRUE(vs[0].waived);
  EXPECT_EQ(vs[0].waive_reason, "fixture: exercising the waiver path");
}

TEST_F(MiniRepoTest, MalformedWaiverIsItsOwnViolation) {
  const auto vs = At("waiver", "src/util/bad_waiver.cc");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].line, 2);
  EXPECT_FALSE(vs[0].waived);  // never waivable
  EXPECT_NE(vs[0].message.find("malformed"), std::string::npos);
}

TEST_F(MiniRepoTest, ReportsNameEveryRuleAndMarkWaivers) {
  const std::string text = checker_.TextReport();
  EXPECT_NE(text.find("src/graph/bad_include.cc:2: [layering]"),
            std::string::npos);
  EXPECT_NE(text.find("(waived: fixture: exercising the waiver path)"),
            std::string::npos);
  EXPECT_NE(text.find("14 finding(s), 13 unwaived"), std::string::npos);

  const std::string json = checker_.JsonReport();
  EXPECT_NE(json.find("\"unwaived\": 13"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"layering\""), std::string::npos);
  EXPECT_NE(json.find("\"waived\": true"), std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"fixture: exercising the waiver path\""),
            std::string::npos);
}

// --- Clean tree and exit codes ---------------------------------------------

TEST(CleanRepoTest, FullyConformingTreeHasNoFindings) {
  Checker checker;
  ASSERT_TRUE(checker.Load(CleanRepo())) << checker.error();
  checker.RunAll();
  EXPECT_TRUE(checker.violations().empty()) << checker.TextReport();
  EXPECT_EQ(checker.unwaived_count(), 0);
}

TEST(RunPsiCheckTest, ExitCodesMatchContract) {
  EXPECT_EQ(RunPsiCheck({"--root", CleanRepo()}), 0);
  EXPECT_EQ(RunPsiCheck({"--root", MiniRepo()}), 1);
  EXPECT_EQ(RunPsiCheck({"--root", MiniRepo(), "--json"}), 1);
  // Usage / load errors.
  EXPECT_EQ(RunPsiCheck({"--root"}), 2);
  EXPECT_EQ(RunPsiCheck({"--root", "/nonexistent/psi-check-root"}), 2);
  EXPECT_EQ(RunPsiCheck({"--bogus-flag"}), 2);
  EXPECT_EQ(RunPsiCheck({"--help"}), 0);
}

}  // namespace
}  // namespace psi::check
