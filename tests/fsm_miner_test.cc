#include "fsm/miner.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "fsm/canonical.h"
#include "tests/test_fixtures.h"

namespace psi::fsm {
namespace {

std::multiset<std::string> CodesOf(const FsmResult& result) {
  std::multiset<std::string> codes;
  for (const MinedPattern& m : result.frequent) {
    codes.insert(CanonicalCode(m.pattern));
  }
  return codes;
}

TEST(FsmMinerTest, Figure1LowThreshold) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  FsmConfig config;
  config.min_support = 2;
  config.max_edges = 3;
  const FsmResult result = FsmMiner(g, config).Mine();
  EXPECT_TRUE(result.complete);
  // At minimum the A-B, A-C and B-C edges are frequent (each has two
  // distinct endpoints per side in Figure 1).
  EXPECT_GE(result.frequent.size(), 3u);
  for (const MinedPattern& m : result.frequent) {
    EXPECT_GE(m.support, 2u);
    EXPECT_LE(m.pattern.num_edges(), 3u);
  }
}

TEST(FsmMinerTest, HighThresholdYieldsNothing) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  FsmConfig config;
  config.min_support = 100;
  const FsmResult result = FsmMiner(g, config).Mine();
  EXPECT_TRUE(result.frequent.empty());
}

TEST(FsmMinerTest, MethodsProduceIdenticalPatternSets) {
  // The paper's §5.5 claim in miniature: ScaleMine+SmartPSI finds exactly
  // the same frequent patterns as subgraph-iso ScaleMine, faster.
  const graph::Graph g = psi::testing::MakeRandomGraph(250, 700, 3, 55);
  FsmConfig enum_config;
  enum_config.min_support = 25;
  enum_config.max_edges = 3;
  enum_config.method = SupportMethod::kEnumeration;
  const FsmResult by_enum = FsmMiner(g, enum_config).Mine();

  FsmConfig psi_config = enum_config;
  psi_config.method = SupportMethod::kPsi;
  const FsmResult by_psi = FsmMiner(g, psi_config).Mine();

  EXPECT_TRUE(by_enum.complete);
  EXPECT_TRUE(by_psi.complete);
  EXPECT_EQ(CodesOf(by_enum), CodesOf(by_psi));
  EXPECT_FALSE(by_enum.frequent.empty());
}

TEST(FsmMinerTest, ThreadCountDoesNotChangeResult) {
  const graph::Graph g = psi::testing::MakeRandomGraph(200, 600, 3, 56);
  FsmConfig config;
  config.min_support = 20;
  config.max_edges = 3;
  config.method = SupportMethod::kPsi;
  config.num_threads = 1;
  const FsmResult serial = FsmMiner(g, config).Mine();
  config.num_threads = 4;
  const FsmResult parallel = FsmMiner(g, config).Mine();
  EXPECT_EQ(CodesOf(serial), CodesOf(parallel));
}

TEST(FsmMinerTest, MaxEdgesBoundsPatternSize) {
  const graph::Graph g = psi::testing::MakeRandomGraph(200, 800, 2, 57);
  FsmConfig config;
  config.min_support = 10;
  config.max_edges = 2;
  const FsmResult result = FsmMiner(g, config).Mine();
  for (const MinedPattern& m : result.frequent) {
    EXPECT_LE(m.pattern.num_edges(), 2u);
  }
}

TEST(FsmMinerTest, AllMinedPatternsConnected) {
  const graph::Graph g = psi::testing::MakeRandomGraph(200, 600, 3, 58);
  FsmConfig config;
  config.min_support = 15;
  config.max_edges = 3;
  const FsmResult result = FsmMiner(g, config).Mine();
  for (const MinedPattern& m : result.frequent) {
    EXPECT_TRUE(m.pattern.IsConnected());
  }
}

TEST(FsmMinerTest, NoDuplicatePatterns) {
  const graph::Graph g = psi::testing::MakeRandomGraph(200, 600, 3, 59);
  FsmConfig config;
  config.min_support = 15;
  config.max_edges = 3;
  const FsmResult result = FsmMiner(g, config).Mine();
  std::set<std::string> codes;
  for (const MinedPattern& m : result.frequent) {
    EXPECT_TRUE(codes.insert(CanonicalCode(m.pattern)).second)
        << "duplicate " << m.pattern.ToString();
  }
}

TEST(FsmMinerTest, AntiMonotoneSupports) {
  // Every extension of a pattern has support <= the parent's true MNI; we
  // check the weaker, directly-observable invariant: every mined pattern
  // meets the threshold.
  const graph::Graph g = psi::testing::MakeRandomGraph(200, 700, 2, 60);
  FsmConfig config;
  config.min_support = 12;
  config.max_edges = 3;
  const FsmResult result = FsmMiner(g, config).Mine();
  for (const MinedPattern& m : result.frequent) {
    EXPECT_GE(m.support, config.min_support);
  }
}

TEST(FsmMinerTest, ExpiredDeadlineMarksIncomplete) {
  const graph::Graph g = psi::testing::MakeRandomGraph(300, 1200, 2, 61);
  FsmConfig config;
  config.min_support = 2;
  config.max_edges = 4;
  const FsmResult result =
      FsmMiner(g, config).Mine(util::Deadline::After(-1.0));
  EXPECT_FALSE(result.complete);
}

}  // namespace
}  // namespace psi::fsm
