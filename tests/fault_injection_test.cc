// Tests for the deterministic fault injector (DESIGN.md §11): schedule
// semantics, the spec grammar, the compiled-in hooks, and the service's
// graceful-degradation policies they drive.
//
// The FaultInjector class compiles in every configuration, so the schedule
// and grammar tests below run under -DPSI_ENABLE_FAULT_INJECTION=OFF too;
// only the sections that need a hook to actually fire inside the stack are
// gated on PSI_FAULT_INJECTION_ENABLED.

#include "util/fault_injection.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/prediction_cache.h"
#include "core/smart_psi.h"
#include "service/request.h"
#include "service/service.h"
#include "shard/sharded_service.h"
#include "tests/test_fixtures.h"
#include "util/timer.h"

namespace psi {
namespace {

using util::FaultInjector;
using util::FaultSchedule;
using util::ScopedFaultSpec;

/// Arms nothing itself but guarantees the global injector is clean before
/// and after every test in this file, so tests compose in any order.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().DisarmAll(); }
  void TearDown() override { FaultInjector::Global().DisarmAll(); }
};

/// Drives `site` through `hits` consultations and returns the fire pattern.
std::vector<bool> FirePattern(std::string_view site, int hits) {
  std::vector<bool> pattern;
  pattern.reserve(static_cast<size_t>(hits));
  for (int i = 0; i < hits; ++i) {
    pattern.push_back(FaultInjector::Global().ShouldFail(site));
  }
  return pattern;
}

// --- Schedule semantics ----------------------------------------------------

TEST_F(FaultInjectionTest, UnarmedSiteNeverFires) {
  EXPECT_FALSE(FaultInjector::Global().armed());
  const std::vector<bool> pattern = FirePattern("some.site", 100);
  EXPECT_EQ(std::count(pattern.begin(), pattern.end(), true), 0);
  // An unarmed site records nothing.
  EXPECT_EQ(FaultInjector::Global().Stats("some.site").hits, 0u);
}

TEST_F(FaultInjectionTest, NthFiresExactlyOnce) {
  FaultInjector::Global().Arm("x", FaultSchedule::Nth(3));
  const std::vector<bool> pattern = FirePattern("x", 10);
  std::vector<bool> expected(10, false);
  expected[2] = true;  // the 3rd hit, 1-based
  EXPECT_EQ(pattern, expected);
  const auto stats = FaultInjector::Global().Stats("x");
  EXPECT_EQ(stats.hits, 10u);
  EXPECT_EQ(stats.fires, 1u);
}

TEST_F(FaultInjectionTest, EveryKFiresPeriodically) {
  FaultInjector::Global().Arm("x", FaultSchedule::EveryK(4));
  const std::vector<bool> pattern = FirePattern("x", 12);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(pattern[static_cast<size_t>(i)], (i + 1) % 4 == 0) << i;
  }
  EXPECT_EQ(FaultInjector::Global().Stats("x").fires, 3u);
}

TEST_F(FaultInjectionTest, AlwaysFiresOnEveryHit) {
  FaultInjector::Global().Arm("x", FaultSchedule::Always());
  const std::vector<bool> pattern = FirePattern("x", 7);
  EXPECT_EQ(std::count(pattern.begin(), pattern.end(), true), 7);
}

TEST_F(FaultInjectionTest, ProbabilisticIsDeterministicPerSeed) {
  FaultInjector::Global().Arm("x", FaultSchedule::WithProbability(99, 0.3));
  const std::vector<bool> first = FirePattern("x", 1000);

  // Re-arming with the same seed replays the identical pattern — the
  // property every chaos spec relies on.
  FaultInjector::Global().Arm("x", FaultSchedule::WithProbability(99, 0.3));
  const std::vector<bool> second = FirePattern("x", 1000);
  EXPECT_EQ(first, second);

  const auto fires = std::count(first.begin(), first.end(), true);
  EXPECT_GT(fires, 200);  // p=0.3 over 1000 hits; generous bounds
  EXPECT_LT(fires, 400);
}

TEST_F(FaultInjectionTest, ArmResetsCountsButTotalFiresIsMonotonic) {
  const uint64_t before = FaultInjector::Global().TotalFires();
  FaultInjector::Global().Arm("x", FaultSchedule::Always());
  FirePattern("x", 5);
  EXPECT_EQ(FaultInjector::Global().Stats("x").fires, 5u);

  FaultInjector::Global().Arm("x", FaultSchedule::Always());  // re-arm
  EXPECT_EQ(FaultInjector::Global().Stats("x").hits, 0u);
  EXPECT_EQ(FaultInjector::Global().Stats("x").fires, 0u);

  FaultInjector::Global().Disarm("x");
  EXPECT_FALSE(FaultInjector::Global().armed());
  // The process-wide gauge keeps counting across arm/disarm cycles.
  EXPECT_EQ(FaultInjector::Global().TotalFires(), before + 5);
}

TEST_F(FaultInjectionTest, AllStatsSortsBySiteName) {
  FaultInjector::Global().Arm("b.site", FaultSchedule::Always());
  FaultInjector::Global().Arm("a.site", FaultSchedule::Always());
  FaultInjector::Global().Arm("c.site", FaultSchedule::Always());
  FaultInjector::Global().ShouldFail("b.site");
  const auto all = FaultInjector::Global().AllStats();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].first, "a.site");
  EXPECT_EQ(all[1].first, "b.site");
  EXPECT_EQ(all[2].first, "c.site");
  EXPECT_EQ(all[1].second.fires, 1u);
}

TEST_F(FaultInjectionTest, MaybeStallSleepsForScheduledDuration) {
  FaultInjector::Global().Arm(
      "stall.site", FaultSchedule::EveryK(2).StallMs(10.0));
  util::WallTimer timer;
  FaultInjector::Global().MaybeStall("stall.site");  // hit 1: no fire
  const double first = timer.Seconds();
  EXPECT_LT(first, 0.009);

  util::WallTimer timer2;
  FaultInjector::Global().MaybeStall("stall.site");  // hit 2: fires, sleeps
  // sleep_for guarantees at least the requested duration.
  EXPECT_GE(timer2.Seconds(), 0.009);
  EXPECT_EQ(FaultInjector::Global().Stats("stall.site").fires, 1u);
}

// --- Spec grammar ----------------------------------------------------------

TEST_F(FaultInjectionTest, ArmFromSpecParsesEveryTriggerForm) {
  ASSERT_TRUE(FaultInjector::Global()
                  .ArmFromSpec("a=nth:2,b=every:3,c=prob:0.5:42,d=always,"
                               "e=prob:0.25,f=always@2.5")
                  .ok());
  const auto all = FaultInjector::Global().AllStats();
  ASSERT_EQ(all.size(), 6u);

  // nth:2 fires on the second hit only.
  EXPECT_FALSE(FaultInjector::Global().ShouldFail("a"));
  EXPECT_TRUE(FaultInjector::Global().ShouldFail("a"));
  EXPECT_FALSE(FaultInjector::Global().ShouldFail("a"));
  // every:3 fires on the third.
  EXPECT_FALSE(FaultInjector::Global().ShouldFail("b"));
  EXPECT_FALSE(FaultInjector::Global().ShouldFail("b"));
  EXPECT_TRUE(FaultInjector::Global().ShouldFail("b"));
  // always fires immediately.
  EXPECT_TRUE(FaultInjector::Global().ShouldFail("d"));
}

TEST_F(FaultInjectionTest, ArmFromSpecOffDisarmsOneSite) {
  ASSERT_TRUE(FaultInjector::Global().ArmFromSpec("a=always,b=always").ok());
  ASSERT_TRUE(FaultInjector::Global().ArmFromSpec("a=off").ok());
  EXPECT_FALSE(FaultInjector::Global().ShouldFail("a"));
  EXPECT_TRUE(FaultInjector::Global().ShouldFail("b"));
}

TEST_F(FaultInjectionTest, ArmFromSpecRejectsMalformedEntries) {
  const char* kBad[] = {
      "justasite",     // no '='
      "=always",       // empty site
      "x=",            // empty trigger
      "x=maybe",       // unknown trigger
      "x=nth:",        // missing N
      "x=nth:0",       // N must be >= 1
      "x=nth:3x",      // trailing garbage
      "x=every:0",     // period must be >= 1
      "x=prob:1.5",    // p out of [0, 1]
      "x=prob:-0.1",   // p out of [0, 1]
      "x=prob:0.5:zz", // bad seed
      "x=always@",     // empty stall
      "x=always@-3",   // negative stall
  };
  for (const char* spec : kBad) {
    EXPECT_FALSE(FaultInjector::Global().ArmFromSpec(spec).ok()) << spec;
  }
}

TEST_F(FaultInjectionTest, BadTailEntryArmsNothing) {
  const util::Status status =
      FaultInjector::Global().ArmFromSpec("good=always,bad=nope");
  EXPECT_FALSE(status.ok());
  // Two-pass parse: the valid head entry must not have been armed.
  EXPECT_FALSE(FaultInjector::Global().armed());
  EXPECT_FALSE(FaultInjector::Global().ShouldFail("good"));
}

TEST_F(FaultInjectionTest, ScopedFaultSpecDisarmsOnExit) {
  {
    ScopedFaultSpec chaos("x=always");
    EXPECT_TRUE(FaultInjector::Global().armed());
  }
  EXPECT_FALSE(FaultInjector::Global().armed());
}

// --- Service degradation policies ------------------------------------------
// (shared by the injection-ON tests and the both-configurations clean-traffic
// test below)

service::ServiceOptions DegradedServiceOptions() {
  service::ServiceOptions options;
  options.num_workers = 1;  // serialize: one worker, deterministic windows
  options.degradation.enabled = true;
  options.degradation.max_shed_retries = 3;
  options.degradation.retry_backoff_ms = 0.1;
  options.degradation.timeout_window = 2;
  options.degradation.timeout_rate_threshold = 0.5;
  options.degradation.degraded_cooldown = 2;
  options.degradation.poison_window = 2;
  options.degradation.mismatch_rate_threshold = 0.25;
  options.degradation.cache_bypass_cooldown = 2;
  options.engine.min_candidates_for_ml = 4;
  return options;
}

service::QueryRequest SmartRequest(const graph::QueryGraph& q) {
  service::QueryRequest request;
  request.query = q;
  request.method = service::Method::kSmart;
  return request;
}

#if PSI_FAULT_INJECTION_ENABLED

// --- Hooks in the stack ----------------------------------------------------

TEST_F(FaultInjectionTest, CacheForcedMissHidesAnEntry) {
  core::PredictionCache cache;
  cache.Insert(42, {.valid = true, .plan_index = 1});
  ASSERT_TRUE(cache.Lookup(42).has_value());

  ScopedFaultSpec chaos("cache.lookup.miss=always");
  EXPECT_FALSE(cache.Lookup(42).has_value());
  // The forced miss counts as a miss in the cache's own traffic counters.
  EXPECT_GE(cache.counters().misses, 1u);
}

TEST_F(FaultInjectionTest, CachePoisonFlipsTheCachedDecision) {
  core::PredictionCache cache;
  cache.Insert(42, {.valid = true, .plan_index = 1});

  ScopedFaultSpec chaos("cache.lookup.poison=always");
  const auto entry = cache.Lookup(42);
  ASSERT_TRUE(entry.has_value());
  EXPECT_FALSE(entry->valid);          // flipped
  EXPECT_EQ(entry->plan_index, 2u);    // shifted; consumers clamp
}

// The acceptance criterion for the whole subsystem: an injected fault moves
// the instrumentation counters but never the answer.
TEST_F(FaultInjectionTest, InjectedFaultsChangeCountersNeverThePivotSet) {
  const uint64_t seed = psi::testing::TestSeed(0xfa017);
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(150, 450, 3, seed);
  const graph::QueryGraph q = psi::testing::ExtractQuery(g, 4, seed);
  if (q.num_nodes() != 4) GTEST_SKIP() << "query extraction failed";

  core::SmartPsiConfig config;
  config.min_candidates_for_ml = 4;  // force the full ML + cache pipeline
  config.seed = seed;

  core::SmartPsiEngine baseline_engine(g, config);
  const core::PsiQueryResult baseline = baseline_engine.Evaluate(q);
  ASSERT_TRUE(baseline.complete);

  const uint64_t fires_before = FaultInjector::Global().TotalFires();
  ScopedFaultSpec chaos(psi::testing::MakeChaosSchedule());
  core::SmartPsiEngine chaos_engine(g, config);
  const core::PsiQueryResult faulted = chaos_engine.Evaluate(q);

  ASSERT_TRUE(faulted.complete);
  EXPECT_EQ(faulted.valid_nodes, baseline.valid_nodes);
  EXPECT_GT(FaultInjector::Global().TotalFires(), fires_before);
}

// --- Service degradation under injected faults ------------------------------

TEST_F(FaultInjectionTest, SubmitRetriesAfterInjectedShed) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  service::PsiService service(g, DegradedServiceOptions());

  ScopedFaultSpec chaos("service.admission.shed=nth:1");
  const service::QueryResponse response =
      service.Execute(SmartRequest(psi::testing::MakeFigure1Query()));
  EXPECT_EQ(response.status, service::RequestStatus::kOk);
  EXPECT_EQ(response.valid_nodes, (std::vector<graph::NodeId>{0, 5}));

  const service::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.metrics.retries, 1u);
  EXPECT_EQ(stats.metrics.admitted, 1u);
  EXPECT_EQ(stats.metrics.rejected, 0u);
  EXPECT_GE(stats.faults_injected, 1u);
}

TEST_F(FaultInjectionTest, ShedFailsFastWhenDegradationDisabled) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  service::ServiceOptions options;
  options.num_workers = 1;  // degradation stays default-disabled
  service::PsiService service(g, options);

  ScopedFaultSpec chaos("service.admission.shed=nth:1");
  const service::QueryResponse response =
      service.Execute(SmartRequest(psi::testing::MakeFigure1Query()));
  EXPECT_EQ(response.status, service::RequestStatus::kRejected);

  const service::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.metrics.retries, 0u);
  EXPECT_EQ(stats.metrics.rejected, 1u);
  EXPECT_EQ(stats.metrics.admitted, 0u);
}

TEST_F(FaultInjectionTest, PreemptionStormEntersAndExitsDegradedMode) {
  const uint64_t seed = psi::testing::TestSeed(0xde62ade);
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(120, 360, 2, seed);
  service::PsiService service(g, DegradedServiceOptions());
  // Every candidate evaluation pretends its MaxTime expired: each request
  // reports method recoveries, so the windowed misprediction-timeout rate
  // saturates and the service must fall back to pessimist-only service.
  ScopedFaultSpec chaos("smart.preempt.expire=always");

  const graph::QueryGraph q = psi::testing::MakeSingleNodeQuery(0);
  std::vector<graph::NodeId> first_answer;
  size_t degraded_served = 0;
  for (int i = 0; i < 10; ++i) {
    const service::QueryResponse response = service.Execute(SmartRequest(q));
    ASSERT_EQ(response.status, service::RequestStatus::kOk) << i;
    if (i == 0) {
      first_answer = response.valid_nodes;
      ASSERT_FALSE(first_answer.empty());
    } else {
      // Degraded or not, the answer never moves.
      EXPECT_EQ(response.valid_nodes, first_answer) << i;
    }
    degraded_served += response.served_degraded ? 1u : 0u;
  }

  const service::ServiceStats stats = service.Stats();
  // window=2 at rate 1.0 >= 0.5: entered by request 2, served two degraded
  // requests (the cooldown), exited, and re-entered on the next window.
  EXPECT_GE(stats.metrics.degraded_entries, 2u);
  EXPECT_GE(stats.metrics.degraded_exits, 1u);
  EXPECT_GE(stats.metrics.degraded_requests, 2u);
  EXPECT_EQ(stats.metrics.degraded_requests, degraded_served);
  EXPECT_GE(stats.metrics.method_recoveries, 1u);
}

TEST_F(FaultInjectionTest, PoisonedCacheTriggersBypassAndRecovers) {
  const uint64_t seed = psi::testing::TestSeed(0xca0e);
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(120, 360, 2, seed);
  service::PsiService service(g, DegradedServiceOptions());
  // Every cache hit hands back a flipped decision. The evaluation contradicts
  // it (answers stay exact), the mismatch-rate detector trips, and the
  // service clears + bypasses the shared cache until the cooldown elapses.
  ScopedFaultSpec chaos("cache.lookup.poison=always");

  const graph::QueryGraph q = psi::testing::MakeSingleNodeQuery(0);
  std::vector<graph::NodeId> first_answer;
  for (int i = 0; i < 12; ++i) {
    const service::QueryResponse response = service.Execute(SmartRequest(q));
    ASSERT_EQ(response.status, service::RequestStatus::kOk) << i;
    if (i == 0) {
      first_answer = response.valid_nodes;
    } else {
      EXPECT_EQ(response.valid_nodes, first_answer) << i;
    }
  }

  const service::ServiceStats stats = service.Stats();
  EXPECT_GE(stats.metrics.cache_mismatches, 1u);
  EXPECT_GE(stats.metrics.cache_bypass_entries, 1u);
  EXPECT_GE(stats.metrics.cache_bypass_exits, 1u);
}

// The service.worker.stall site deschedules the sharded router between
// dequeue and execution — latency moves, the answer must not (DESIGN.md
// §11's core corollary).
TEST_F(FaultInjectionTest, WorkerStallDelaysEvaluationNotTheAnswer) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  shard::ShardedServiceOptions options;
  options.num_workers = 2;
  options.build.partition.num_shards = 2;
  options.build.snapshot.signature_depth = 2;
  shard::ShardedPsiService service(g, options);

  ScopedFaultSpec chaos("service.worker.stall=always@2");
  service::QueryRequest request;
  request.query = psi::testing::MakeFigure1Query();
  const service::QueryResponse response = service.Execute(std::move(request));
  EXPECT_EQ(response.status, service::RequestStatus::kOk);
  EXPECT_EQ(response.valid_nodes, (std::vector<graph::NodeId>{0, 5}));
  const auto stats =
      FaultInjector::Global().Stats(util::faults::kServiceWorkerStall);
  EXPECT_GE(stats.fires, 1u);
}

#else  // !PSI_FAULT_INJECTION_ENABLED

// In an injection-OFF build the hook macros compile to nothing: arming the
// injector must not perturb the stack, and no site ever records a hit.
TEST_F(FaultInjectionTest, OffBuildHooksAreInert) {
  ScopedFaultSpec chaos("cache.lookup.miss=always,cache.lookup.poison=always");
  core::PredictionCache cache;
  cache.Insert(42, {.valid = true, .plan_index = 1});
  const auto entry = cache.Lookup(42);
  ASSERT_TRUE(entry.has_value());  // no forced miss
  EXPECT_TRUE(entry->valid);       // no poison
  EXPECT_EQ(util::FaultInjector::Global().Stats("cache.lookup.miss").hits, 0u);
}

#endif  // PSI_FAULT_INJECTION_ENABLED

// Sanity in both build modes: fault-free traffic under enabled degradation
// policies must never trip a policy.
TEST_F(FaultInjectionTest, CleanTrafficNeverTriggersDegradation) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  service::PsiService service(g, DegradedServiceOptions());
  for (int i = 0; i < 8; ++i) {
    const service::QueryResponse response =
        service.Execute(SmartRequest(psi::testing::MakeFigure1Query()));
    ASSERT_EQ(response.status, service::RequestStatus::kOk);
    EXPECT_EQ(response.valid_nodes, (std::vector<graph::NodeId>{0, 5}));
    EXPECT_FALSE(response.served_degraded);
  }
  const service::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.metrics.degraded_entries, 0u);
  EXPECT_EQ(stats.metrics.cache_bypass_entries, 0u);
  EXPECT_EQ(stats.metrics.retries, 0u);
  EXPECT_FALSE(stats.degraded_mode);
  EXPECT_FALSE(stats.cache_bypass);
}

}  // namespace
}  // namespace psi
