#include "graph/algorithms.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "tests/test_fixtures.h"

namespace psi::graph {
namespace {

TEST(BfsDistancesTest, Figure1FromU1) {
  const Graph g = testing::MakeFigure1Graph();
  const auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);  // u2
  EXPECT_EQ(dist[2], 1u);  // u3
  EXPECT_EQ(dist[3], 1u);  // u4
  EXPECT_EQ(dist[4], 1u);  // u5
  EXPECT_EQ(dist[5], 2u);  // u6
}

TEST(BfsDistancesTest, DepthBound) {
  const Graph g = testing::MakeFigure1Graph();
  const auto dist = BfsDistances(g, 0, 1);
  EXPECT_EQ(dist[5], UINT32_MAX);  // u6 beyond depth 1
}

TEST(BfsDistancesTest, UnreachableNodes) {
  GraphBuilder b;
  b.AddNodes(3);
  b.AddEdge(0, 1);
  const Graph g = std::move(b).Build();
  const auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[2], UINT32_MAX);
}

TEST(BoundedBfsTest, VisitsEachNodeOnceWithShortestDepth) {
  const Graph g = testing::MakeFigure1Graph();
  BoundedBfs bfs(g.num_nodes());
  std::vector<int> visits(g.num_nodes(), 0);
  std::vector<uint32_t> depth(g.num_nodes(), 99);
  bfs.Run(g, 0, 2, [&](NodeId v, uint32_t d) {
    ++visits[v];
    depth[v] = d;
  });
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(visits[v], 1);
  EXPECT_EQ(depth[0], 0u);
  EXPECT_EQ(depth[5], 2u);
}

TEST(BoundedBfsTest, ReusableAcrossRuns) {
  const Graph g = testing::MakeFigure1Graph();
  BoundedBfs bfs(g.num_nodes());
  size_t count1 = 0;
  bfs.Run(g, 0, 0, [&](NodeId, uint32_t) { ++count1; });
  EXPECT_EQ(count1, 1u);
  size_t count2 = 0;
  bfs.Run(g, 5, 1, [&](NodeId, uint32_t) { ++count2; });
  EXPECT_EQ(count2, 3u);  // u6, u3, u5
}

TEST(ConnectedComponentsTest, SingleComponent) {
  const Graph g = testing::MakeFigure1Graph();
  size_t n = 0;
  const auto comp = ConnectedComponents(g, &n);
  EXPECT_EQ(n, 1u);
  for (const uint32_t c : comp) EXPECT_EQ(c, 0u);
}

TEST(ConnectedComponentsTest, MultipleComponents) {
  GraphBuilder b;
  b.AddNodes(5);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  const Graph g = std::move(b).Build();
  size_t n = 0;
  const auto comp = ConnectedComponents(g, &n);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[4], comp[0]);
  EXPECT_NE(comp[4], comp[2]);
}

TEST(DegreeStatsTest, Figure1) {
  const Graph g = testing::MakeFigure1Graph();
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.min, 2u);
  EXPECT_EQ(stats.max, 4u);
  EXPECT_NEAR(stats.mean, 20.0 / 6.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.median, 3.5);
}

TEST(DegreeStatsTest, EmptyGraph) {
  GraphBuilder b;
  const Graph g = std::move(b).Build();
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.max, 0u);
  EXPECT_EQ(stats.mean, 0.0);
}

TEST(InducedSubgraphTest, CopiesLabelsAndMutualEdges) {
  const Graph g = testing::MakeFigure1Graph();
  // u1(A), u2(B), u3(C): triangle in G.
  const QueryGraph q = InducedSubgraph(g, {0, 1, 2});
  EXPECT_EQ(q.num_nodes(), 3u);
  EXPECT_EQ(q.num_edges(), 3u);
  EXPECT_EQ(q.label(0), testing::kA);
  EXPECT_EQ(q.label(1), testing::kB);
  EXPECT_EQ(q.label(2), testing::kC);
  EXPECT_TRUE(q.HasEdge(0, 1));
  EXPECT_TRUE(q.HasEdge(1, 2));
  EXPECT_TRUE(q.HasEdge(0, 2));
}

TEST(InducedSubgraphTest, NonAdjacentNodesNoEdge) {
  const Graph g = testing::MakeFigure1Graph();
  // u1 and u6 are not adjacent.
  const QueryGraph q = InducedSubgraph(g, {0, 5});
  EXPECT_EQ(q.num_edges(), 0u);
}

}  // namespace
}  // namespace psi::graph
