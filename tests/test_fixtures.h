#ifndef SMARTPSI_TESTS_TEST_FIXTURES_H_
#define SMARTPSI_TESTS_TEST_FIXTURES_H_

#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/query_graph.h"
#include "util/random.h"

namespace psi::testing {

// Labels used by the paper's running examples.
inline constexpr graph::Label kA = 0;
inline constexpr graph::Label kB = 1;
inline constexpr graph::Label kC = 2;
inline constexpr graph::Label kD = 3;

/// The data graph of paper Figure 1(b):
///   u1(A)–u2(B), u1–u3(C), u1–u4(C), u1–u5(B),
///   u2–u3, u2–u4, u5–u3, u5–u4, u6(A)–u3, u6–u5.
/// Node ids here are zero-based: u1 -> 0, ..., u6 -> 5.
inline graph::Graph MakeFigure1Graph() {
  graph::GraphBuilder b;
  const graph::NodeId u1 = b.AddNode(kA);
  const graph::NodeId u2 = b.AddNode(kB);
  const graph::NodeId u3 = b.AddNode(kC);
  const graph::NodeId u4 = b.AddNode(kC);
  const graph::NodeId u5 = b.AddNode(kB);
  const graph::NodeId u6 = b.AddNode(kA);
  b.AddEdge(u1, u2);
  b.AddEdge(u1, u3);
  b.AddEdge(u1, u4);
  b.AddEdge(u1, u5);
  b.AddEdge(u2, u3);
  b.AddEdge(u2, u4);
  b.AddEdge(u5, u3);
  b.AddEdge(u5, u4);
  b.AddEdge(u6, u3);
  b.AddEdge(u6, u5);
  return std::move(b).Build();
}

/// The triangle query S(v1, v2, v3) of Figure 1(a): v1(A)–v2(B)–v3(C)–v1,
/// pivot v1. Its PSI answer on MakeFigure1Graph() is {u1, u6} = ids {0, 5}.
inline graph::QueryGraph MakeFigure1Query() {
  graph::QueryGraph q;
  const graph::NodeId v1 = q.AddNode(kA);
  const graph::NodeId v2 = q.AddNode(kB);
  const graph::NodeId v3 = q.AddNode(kC);
  q.AddEdge(v1, v2);
  q.AddEdge(v2, v3);
  q.AddEdge(v1, v3);
  q.set_pivot(v1);
  return q;
}

/// The query of paper Figure 2(a) / §3.1's matrix example:
///   v0(A)–v1(B), v1–v2(B), v1–v3(C), v2–v3, v3–v4(D).
/// Its matrix signatures NS^1 / NS^2 are printed in the paper and are
/// asserted exactly in signature_test.cc.
inline graph::QueryGraph MakeFigure2Query() {
  graph::QueryGraph q;
  const graph::NodeId v0 = q.AddNode(kA);
  const graph::NodeId v1 = q.AddNode(kB);
  const graph::NodeId v2 = q.AddNode(kB);
  const graph::NodeId v3 = q.AddNode(kC);
  const graph::NodeId v4 = q.AddNode(kD);
  q.AddEdge(v0, v1);
  q.AddEdge(v1, v2);
  q.AddEdge(v1, v3);
  q.AddEdge(v2, v3);
  q.AddEdge(v3, v4);
  q.set_pivot(v1);
  return q;
}

/// Small labeled random graph for property tests (deterministic in `seed`).
inline graph::Graph MakeRandomGraph(size_t nodes, size_t edges,
                                    size_t num_labels, uint64_t seed) {
  util::Rng rng(seed);
  graph::LabelConfig labels;
  labels.num_labels = num_labels;
  labels.zipf_exponent = 0.6;
  return graph::ErdosRenyi(nodes, edges, labels, rng);
}

}  // namespace psi::testing

#endif  // SMARTPSI_TESTS_TEST_FIXTURES_H_
