#ifndef SMARTPSI_TESTS_TEST_FIXTURES_H_
#define SMARTPSI_TESTS_TEST_FIXTURES_H_

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/query_extractor.h"
#include "graph/query_graph.h"
#include "util/random.h"

namespace psi::testing {

/// Seed for randomized tests: `base_seed` by default, overridden globally
/// by the PSI_TEST_SEED environment variable. Every randomized suite
/// derives its RNGs from this (never std::random_device) so any failure
/// replays exactly with `PSI_TEST_SEED=<seed> ./the_test`. `salt` keeps
/// tests within one binary decorrelated under the same override.
inline uint64_t TestSeed(uint64_t base_seed, uint64_t salt = 0) {
  if (const char* env = std::getenv("PSI_TEST_SEED")) {
    char* end = nullptr;
    const uint64_t parsed = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') {
      return parsed ^ (salt * 0x9e3779b97f4a7c15ULL);
    }
  }
  return base_seed ^ (salt * 0x9e3779b97f4a7c15ULL);
}

/// Annotates every assertion in scope with the seed that produced the
/// failure, so the log line alone is enough to replay:
///   const uint64_t seed = psi::testing::TestSeed(42);
///   PSI_LOG_TEST_SEED(seed);
#define PSI_LOG_TEST_SEED(seed)                                       \
  SCOPED_TRACE(::testing::Message()                                   \
               << "replay with PSI_TEST_SEED=" << (seed))

// Labels used by the paper's running examples.
inline constexpr graph::Label kA = 0;
inline constexpr graph::Label kB = 1;
inline constexpr graph::Label kC = 2;
inline constexpr graph::Label kD = 3;

/// The data graph of paper Figure 1(b):
///   u1(A)–u2(B), u1–u3(C), u1–u4(C), u1–u5(B),
///   u2–u3, u2–u4, u5–u3, u5–u4, u6(A)–u3, u6–u5.
/// Node ids here are zero-based: u1 -> 0, ..., u6 -> 5.
inline graph::Graph MakeFigure1Graph() {
  graph::GraphBuilder b;
  const graph::NodeId u1 = b.AddNode(kA);
  const graph::NodeId u2 = b.AddNode(kB);
  const graph::NodeId u3 = b.AddNode(kC);
  const graph::NodeId u4 = b.AddNode(kC);
  const graph::NodeId u5 = b.AddNode(kB);
  const graph::NodeId u6 = b.AddNode(kA);
  b.AddEdge(u1, u2);
  b.AddEdge(u1, u3);
  b.AddEdge(u1, u4);
  b.AddEdge(u1, u5);
  b.AddEdge(u2, u3);
  b.AddEdge(u2, u4);
  b.AddEdge(u5, u3);
  b.AddEdge(u5, u4);
  b.AddEdge(u6, u3);
  b.AddEdge(u6, u5);
  return std::move(b).Build();
}

/// The triangle query S(v1, v2, v3) of Figure 1(a): v1(A)–v2(B)–v3(C)–v1,
/// pivot v1. Its PSI answer on MakeFigure1Graph() is {u1, u6} = ids {0, 5}.
inline graph::QueryGraph MakeFigure1Query() {
  graph::QueryGraph q;
  const graph::NodeId v1 = q.AddNode(kA);
  const graph::NodeId v2 = q.AddNode(kB);
  const graph::NodeId v3 = q.AddNode(kC);
  q.AddEdge(v1, v2);
  q.AddEdge(v2, v3);
  q.AddEdge(v1, v3);
  q.set_pivot(v1);
  return q;
}

/// The query of paper Figure 2(a) / §3.1's matrix example:
///   v0(A)–v1(B), v1–v2(B), v1–v3(C), v2–v3, v3–v4(D).
/// Its matrix signatures NS^1 / NS^2 are printed in the paper and are
/// asserted exactly in signature_test.cc.
inline graph::QueryGraph MakeFigure2Query() {
  graph::QueryGraph q;
  const graph::NodeId v0 = q.AddNode(kA);
  const graph::NodeId v1 = q.AddNode(kB);
  const graph::NodeId v2 = q.AddNode(kB);
  const graph::NodeId v3 = q.AddNode(kC);
  const graph::NodeId v4 = q.AddNode(kD);
  q.AddEdge(v0, v1);
  q.AddEdge(v1, v2);
  q.AddEdge(v1, v3);
  q.AddEdge(v2, v3);
  q.AddEdge(v3, v4);
  q.set_pivot(v1);
  return q;
}

/// Small labeled random graph for property tests (deterministic in `seed`).
inline graph::Graph MakeRandomGraph(size_t nodes, size_t edges,
                                    size_t num_labels, uint64_t seed) {
  util::Rng rng(seed);
  graph::LabelConfig labels;
  labels.num_labels = num_labels;
  labels.zipf_exponent = 0.6;
  return graph::ErdosRenyi(nodes, edges, labels, rng);
}

/// The extract-a-connected-query idiom most randomized suites repeat:
/// random walk extraction from `g`, deterministic in `seed`. Returns a
/// query with fewer than `query_size` nodes when extraction fails (callers
/// GTEST_SKIP on that, matching QueryExtractor's contract).
inline graph::QueryGraph ExtractQuery(const graph::Graph& g, size_t query_size,
                                      uint64_t seed) {
  graph::QueryExtractor extractor(g);
  util::Rng rng(seed);
  return extractor.Extract(query_size, rng);
}

/// A single-node pivot query: matches every data node with `label`.
/// The simplest fixture that exercises the full service path.
inline graph::QueryGraph MakeSingleNodeQuery(graph::Label label) {
  graph::QueryGraph q;
  q.set_pivot(q.AddNode(label));
  return q;
}

/// A labeled path query v0–v1–…–v(k-1) with the pivot at one end.
inline graph::QueryGraph MakePathQuery(const std::vector<graph::Label>& labels) {
  graph::QueryGraph q;
  for (const graph::Label l : labels) q.AddNode(l);
  for (graph::NodeId v = 0; v + 1 < q.num_nodes(); ++v) {
    q.AddEdge(v, v + 1);
  }
  q.set_pivot(0);
  return q;
}

/// The standard chaos schedule for tests: every engine-side fault site
/// armed deterministically (fail-every-K with coprime periods, so firings
/// interleave rather than align). Use with ScopedFaultSpec:
///   util::ScopedFaultSpec chaos(psi::testing::MakeChaosSchedule());
/// IO short-read sites are intentionally absent — they make loads fail by
/// design and belong in the io_fuzz suite, not under differential runs.
inline std::string MakeChaosSchedule() {
  return "cache.lookup.miss=every:3,"
         "cache.lookup.poison=every:5,"
         "smart.predict.flip=every:4,"
         "smart.plan.mispredict=every:7,"
         "smart.preempt.expire=every:6,"
         "threadpool.task.start=prob:0.05:13@0.2";
}

}  // namespace psi::testing

#endif  // SMARTPSI_TESTS_TEST_FIXTURES_H_
