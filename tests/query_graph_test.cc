#include "graph/query_graph.h"

#include <gtest/gtest.h>

#include "tests/test_fixtures.h"

namespace psi::graph {
namespace {

TEST(QueryGraphTest, BuildBasics) {
  QueryGraph q;
  const NodeId a = q.AddNode(3);
  const NodeId b = q.AddNode(5);
  EXPECT_TRUE(q.AddEdge(a, b, 2));
  EXPECT_EQ(q.num_nodes(), 2u);
  EXPECT_EQ(q.num_edges(), 1u);
  EXPECT_EQ(q.label(a), 3u);
  EXPECT_EQ(q.degree(a), 1u);
  EXPECT_TRUE(q.HasEdge(a, b));
  EXPECT_TRUE(q.HasEdge(b, a));
  EXPECT_EQ(q.EdgeLabel(a, b), 2u);
  EXPECT_EQ(q.EdgeLabel(b, a), 2u);
}

TEST(QueryGraphTest, RejectsSelfLoopsAndDuplicates) {
  QueryGraph q;
  const NodeId a = q.AddNode(0);
  const NodeId b = q.AddNode(0);
  EXPECT_FALSE(q.AddEdge(a, a));
  EXPECT_TRUE(q.AddEdge(a, b));
  EXPECT_FALSE(q.AddEdge(b, a));  // duplicate in reverse
  EXPECT_EQ(q.num_edges(), 1u);
}

TEST(QueryGraphTest, NeighborBits) {
  const QueryGraph q = testing::MakeFigure2Query();
  // v1 is adjacent to v0, v2, v3.
  EXPECT_EQ(q.neighbor_bits(1), (1ULL << 0) | (1ULL << 2) | (1ULL << 3));
}

TEST(QueryGraphTest, PivotManagement) {
  QueryGraph q;
  q.AddNode(0);
  EXPECT_FALSE(q.has_pivot());
  q.set_pivot(0);
  EXPECT_TRUE(q.has_pivot());
  EXPECT_EQ(q.pivot(), 0u);
}

TEST(QueryGraphTest, ConnectivityDetection) {
  QueryGraph q;
  q.AddNode(0);
  q.AddNode(0);
  q.AddNode(0);
  EXPECT_FALSE(q.IsConnected());
  q.AddEdge(0, 1);
  EXPECT_FALSE(q.IsConnected());
  q.AddEdge(1, 2);
  EXPECT_TRUE(q.IsConnected());
}

TEST(QueryGraphTest, EmptyAndSingletonAreConnected) {
  QueryGraph empty;
  EXPECT_TRUE(empty.IsConnected());
  QueryGraph single;
  single.AddNode(0);
  EXPECT_TRUE(single.IsConnected());
}

TEST(QueryGraphTest, MaxLabelPlusOne) {
  QueryGraph q;
  EXPECT_EQ(q.max_label_plus_one(), 0u);
  q.AddNode(4);
  q.AddNode(2);
  EXPECT_EQ(q.max_label_plus_one(), 5u);
}

TEST(QueryGraphTest, SetLabel) {
  QueryGraph q;
  const NodeId a = q.AddNode(1);
  q.set_label(a, 9);
  EXPECT_EQ(q.label(a), 9u);
}

TEST(QueryGraphTest, ToStringContainsStructure) {
  const QueryGraph q = testing::MakeFigure1Query();
  const std::string s = q.ToString();
  EXPECT_NE(s.find("pivot=0"), std::string::npos);
  EXPECT_NE(s.find("0-1"), std::string::npos);
}

TEST(QueryGraphTest, NeighborsOrderIsInsertionOrder) {
  QueryGraph q;
  q.AddNode(0);
  q.AddNode(0);
  q.AddNode(0);
  q.AddEdge(0, 2, 7);
  q.AddEdge(0, 1, 8);
  const auto& nbrs = q.neighbors(0);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0].first, 2u);
  EXPECT_EQ(nbrs[0].second, 7u);
  EXPECT_EQ(nbrs[1].first, 1u);
  EXPECT_EQ(nbrs[1].second, 8u);
}

}  // namespace
}  // namespace psi::graph
