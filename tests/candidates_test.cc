#include "match/candidates.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "tests/test_fixtures.h"

namespace psi::match {
namespace {

TEST(ExtractPivotCandidatesTest, Figure1TriangleQuery) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  // Pivot v1 has label A (nodes u1=0 and u6=5) and degree 2; both data
  // nodes have degree >= 2.
  const auto candidates = ExtractPivotCandidates(g, q);
  EXPECT_EQ(candidates, (std::vector<graph::NodeId>{0, 5}));
}

TEST(ExtractPivotCandidatesTest, DegreeFilter) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  graph::QueryGraph q;
  const graph::NodeId v = q.AddNode(psi::testing::kA);
  for (int i = 0; i < 3; ++i) {
    const graph::NodeId w = q.AddNode(psi::testing::kB);
    q.AddEdge(v, w);
  }
  q.set_pivot(v);
  // Pivot degree 3: only u1 (degree 4) qualifies; u6 has degree 2.
  const auto candidates = ExtractPivotCandidates(g, q);
  EXPECT_EQ(candidates, (std::vector<graph::NodeId>{0}));
}

TEST(ExtractPivotCandidatesTest, UnknownLabelIsEmpty) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  graph::QueryGraph q;
  q.AddNode(99);
  q.set_pivot(0);
  EXPECT_TRUE(ExtractPivotCandidates(g, q).empty());
}

TEST(ExtractPivotCandidatesTest, ResultSorted) {
  const graph::Graph g = psi::testing::MakeRandomGraph(500, 1200, 3, 77);
  graph::QueryGraph q;
  q.AddNode(0);
  q.set_pivot(0);
  const auto candidates = ExtractPivotCandidates(g, q);
  EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
  EXPECT_EQ(candidates.size(), g.label_frequency(0));
}

}  // namespace
}  // namespace psi::match
