#include "match/candidates.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "tests/test_fixtures.h"

namespace psi::match {
namespace {

TEST(ExtractPivotCandidatesTest, Figure1TriangleQuery) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  // Pivot v1 has label A (nodes u1=0 and u6=5) and degree 2; both data
  // nodes have degree >= 2.
  const auto candidates = ExtractPivotCandidates(g, q);
  EXPECT_EQ(candidates, (std::vector<graph::NodeId>{0, 5}));
}

TEST(ExtractPivotCandidatesTest, DegreeFilter) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  graph::QueryGraph q;
  const graph::NodeId v = q.AddNode(psi::testing::kA);
  q.AddEdge(v, q.AddNode(psi::testing::kB));
  q.AddEdge(v, q.AddNode(psi::testing::kC));
  q.AddEdge(v, q.AddNode(psi::testing::kC));
  q.set_pivot(v);
  // Pivot degree 3: only u1 (degree 4, neighbors B,C,C,B) qualifies; u6
  // has degree 2.
  const auto candidates = ExtractPivotCandidates(g, q);
  EXPECT_EQ(candidates, (std::vector<graph::NodeId>{0}));
}

TEST(ExtractPivotCandidatesTest, NeighborLabelMultiplicityPrunes) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  graph::QueryGraph q;
  const graph::NodeId v = q.AddNode(psi::testing::kA);
  for (int i = 0; i < 3; ++i) {
    q.AddEdge(v, q.AddNode(psi::testing::kB));
  }
  q.set_pivot(v);
  // The pivot demands three distinct B-neighbors. u1 has degree 4 but only
  // two B-neighbors (u2, u5), so no embedding can bind it: the
  // neighborhood pre-check eliminates it before any signature work.
  EXPECT_TRUE(ExtractPivotCandidates(g, q).empty());
}

TEST(ExtractPivotCandidatesTest, MissingNeighborLabelPrunes) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  graph::QueryGraph q;
  const graph::NodeId v = q.AddNode(psi::testing::kA);
  q.AddEdge(v, q.AddNode(psi::testing::kD));  // no data node has label D
  q.set_pivot(v);
  EXPECT_TRUE(ExtractPivotCandidates(g, q).empty());
}

TEST(ExtractPivotCandidatesTest, EdgeLabelMismatchPrunes) {
  graph::GraphBuilder b;
  const graph::NodeId u0 = b.AddNode(psi::testing::kA);
  const graph::NodeId u1 = b.AddNode(psi::testing::kB);
  const graph::NodeId u2 = b.AddNode(psi::testing::kA);
  const graph::NodeId u3 = b.AddNode(psi::testing::kB);
  b.AddEdge(u0, u1, /*label=*/1);
  b.AddEdge(u2, u3, /*label=*/2);
  const graph::Graph g = std::move(b).Build();

  graph::QueryGraph q;
  const graph::NodeId v = q.AddNode(psi::testing::kA);
  q.AddEdge(v, q.AddNode(psi::testing::kB), /*label=*/1);
  q.set_pivot(v);
  // Both A-nodes have a B-neighbor, but only u0 reaches its B over an
  // edge labeled 1.
  EXPECT_EQ(ExtractPivotCandidates(g, q), (std::vector<graph::NodeId>{u0}));
}

TEST(ExtractPivotCandidatesTest, PrecheckNeverDropsValidPivots) {
  // Property: on random graphs/queries the pre-check only removes nodes
  // the full pessimistic evaluation would refute — every node outside the
  // candidate list with the right label/degree must lack some required
  // (edge label, neighbor label) pair.
  const graph::Graph g = psi::testing::MakeRandomGraph(300, 900, 4, 5);
  util::Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    graph::QueryGraph q;
    const graph::NodeId v = q.AddNode(
        static_cast<graph::Label>(rng.NextBounded(4)));
    const size_t fanout = 1 + rng.NextBounded(3);
    for (size_t i = 0; i < fanout; ++i) {
      q.AddEdge(v, q.AddNode(static_cast<graph::Label>(rng.NextBounded(4))));
    }
    q.set_pivot(v);
    const auto candidates = ExtractPivotCandidates(g, q);
    EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      if (std::binary_search(candidates.begin(), candidates.end(), u)) {
        continue;
      }
      if (g.label(u) != q.label(v) || g.degree(u) < q.degree(v)) continue;
      // u was pruned by the neighborhood pre-check: verify some required
      // neighbor-label multiplicity really is uncovered.
      bool uncovered = false;
      for (const auto& [w, edge_label] : q.neighbors(v)) {
        size_t need = 0;
        for (const auto& [w2, el2] : q.neighbors(v)) {
          if (q.label(w2) == q.label(w) && el2 == edge_label) ++need;
        }
        size_t have = 0;
        const auto nbrs = g.neighbors(u);
        const auto els = g.edge_labels(u);
        for (size_t i = 0; i < nbrs.size(); ++i) {
          if (g.label(nbrs[i]) == q.label(w) && els[i] == edge_label) ++have;
        }
        if (have < need) {
          uncovered = true;
          break;
        }
      }
      EXPECT_TRUE(uncovered) << "node " << u << " wrongly pruned";
    }
  }
}

TEST(ExtractPivotCandidatesTest, UnknownLabelIsEmpty) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  graph::QueryGraph q;
  q.AddNode(99);
  q.set_pivot(0);
  EXPECT_TRUE(ExtractPivotCandidates(g, q).empty());
}

TEST(ExtractPivotCandidatesTest, ResultSorted) {
  const graph::Graph g = psi::testing::MakeRandomGraph(500, 1200, 3, 77);
  graph::QueryGraph q;
  q.AddNode(0);
  q.set_pivot(0);
  const auto candidates = ExtractPivotCandidates(g, q);
  EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
  EXPECT_EQ(candidates.size(), g.label_frequency(0));
}

}  // namespace
}  // namespace psi::match
