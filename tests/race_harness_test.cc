// Targeted multi-thread stress tests for every shared-state component
// (DESIGN.md §10). The assertions are deliberately light — the point is to
// drive real concurrent interleavings through the shared paths so
// ThreadSanitizer (-fsanitize=thread) can prove them race-free; the CI TSan
// job runs this suite alongside the regular tests. Without TSan the suite
// still checks the cross-thread invariants each component promises.

#include <atomic>
#include <cstdint>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/prediction_cache.h"
#include "match/search_scratch.h"
#include "service/metrics.h"
#include "service/request.h"
#include "service/service.h"
#include "service/workload.h"
#include "signature/signature_matrix.h"
#include "tests/test_fixtures.h"
#include "util/random.h"
#include "util/stop_token.h"
#include "util/thread_pool.h"

namespace psi {
namespace {

/// Launches `n` threads running `body(thread_index)` and joins them all.
template <typename Body>
void RunThreads(int n, const Body& body) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) threads.emplace_back([&body, t] { body(t); });
  for (auto& thread : threads) thread.join();
}

// --- PredictionCache -------------------------------------------------------

// Concurrent get/put/clear over a salted key space that collides across
// threads and spreads over all shards. Counter sums must remain coherent:
// every lookup is either a hit or a miss, never both, never lost.
TEST(RaceHarness, PredictionCacheGetPutClearStorm) {
  core::PredictionCache cache;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr uint64_t kKeySpace = 512;  // dense collisions across threads

  RunThreads(kThreads, [&](int t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      // Salt like the service does: query fingerprint XOR row hash. The
      // shard index uses the high bits, so spread the salt there too.
      const uint64_t key =
          (static_cast<uint64_t>(i) % kKeySpace) * 0x9e3779b97f4a7c15ULL;
      if (i % 3 == 0) {
        cache.Insert(key, {.valid = (t + i) % 2 == 0,
                           .plan_index = static_cast<uint32_t>(t)});
      } else {
        (void)cache.Lookup(key);
      }
      if (i % 1024 == 0 && t == 0) cache.Clear();
      if (i % 257 == 0) (void)cache.size();
    }
  });

  const core::PredictionCache::Counters counters = cache.counters();
  // 2 of every 3 ops per thread are lookups; each must count exactly once.
  EXPECT_EQ(counters.hits + counters.misses,
            static_cast<uint64_t>(kThreads) * (kOpsPerThread -
                                               (kOpsPerThread + 2) / 3));
  // 1 of every 3 ops per thread is an insert.
  EXPECT_EQ(counters.inserts,
            static_cast<uint64_t>(kThreads) * ((kOpsPerThread + 2) / 3));
  EXPECT_LE(cache.size(), kKeySpace);
}

// --- ThreadPool ------------------------------------------------------------

// Submit / TrySubmit / Wait / queue_depth churn from many threads at once,
// including tasks that submit follow-up tasks, then destruction with the
// queue still warm (the destructor must drain, not drop).
TEST(RaceHarness, ThreadPoolSubmitWaitChurn) {
  std::atomic<int> executed{0};
  std::atomic<int> submitted{0};
  {
    util::ThreadPool pool(4);
    RunThreads(6, [&](int t) {
      for (int i = 0; i < 200; ++i) {
        if (t % 2 == 0) {
          pool.Submit([&executed] {
            executed.fetch_add(1, std::memory_order_relaxed);
          });
          submitted.fetch_add(1, std::memory_order_relaxed);
          if (i % 16 == 0) pool.Wait();
        } else {
          const bool ok = pool.TrySubmit(
              [&executed, &pool, &submitted] {
                executed.fetch_add(1, std::memory_order_relaxed);
                // Tasks may themselves submit (the engine does this).
                if (pool.TrySubmit([&executed] {
                      executed.fetch_add(1, std::memory_order_relaxed);
                    }, /*max_queue_depth=*/64)) {
                  submitted.fetch_add(1, std::memory_order_relaxed);
                }
              },
              /*max_queue_depth=*/32);
          if (ok) submitted.fetch_add(1, std::memory_order_relaxed);
          (void)pool.queue_depth();
        }
      }
    });
    // Destructor runs here with work possibly still queued.
  }
  EXPECT_EQ(executed.load(), submitted.load());
}

// Rapid construct/drain/destroy cycles: the shutdown handshake (flag +
// notify + join) must not race the workers' queue checks.
TEST(RaceHarness, ThreadPoolConstructDestroyCycles) {
  std::atomic<int> executed{0};
  for (int round = 0; round < 40; ++round) {
    util::ThreadPool pool(3);
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(executed.load(), 40 * 8);
}

// --- SearchScratchPool -----------------------------------------------------

// Lease churn: many threads checking scratch arenas in and out while
// mutating the leased buffers. Each lease must be exclusive — concurrent
// writes to the same scratch would be a TSan-visible race.
TEST(RaceHarness, ScratchPoolLeaseChurn) {
  match::SearchScratchPool pool;
  RunThreads(8, [&](int t) {
    for (int i = 0; i < 500; ++i) {
      match::SearchScratchPool::Lease lease(&pool);
      match::SearchScratch* scratch = lease.get();
      // Mutate through the lease; exclusivity makes this race-free.
      scratch->mapping.assign(16, static_cast<graph::NodeId>(t));
      scratch->mapped_stack.push_back(static_cast<graph::NodeId>(i));
      for (const graph::NodeId id : scratch->mapping) {
        ASSERT_EQ(id, static_cast<graph::NodeId>(t));
      }
      if (i % 64 == 0) (void)pool.idle_count();
    }
  });
  EXPECT_GE(pool.idle_count(), 1u);
}

// --- SignatureMatrix::RowHash ---------------------------------------------

// First-touch races on the memoized row hashes: every thread hammers the
// same fresh rows, so several threads compute the same hash concurrently
// and the winning store must be benign (all observers agree, forever).
TEST(RaceHarness, RowHashFirstTouchAgreement) {
  constexpr size_t kRows = 64;
  constexpr size_t kLabels = 8;
  signature::SignatureMatrix sigs(kRows, kLabels,
                                  signature::Method::kExploration,
                                  /*depth=*/2);
  for (size_t i = 0; i < kRows; ++i) {
    for (size_t l = 0; l < kLabels; ++l) {
      sigs.at(i, l) = static_cast<float>((i * 31 + l * 7) % 13) * 0.25f;
    }
  }

  constexpr int kThreads = 8;
  std::vector<std::vector<uint64_t>> seen(
      kThreads, std::vector<uint64_t>(kRows, 0));
  RunThreads(kThreads, [&](int t) {
    for (int round = 0; round < 3; ++round) {
      for (size_t i = 0; i < kRows; ++i) {
        const uint64_t h = sigs.RowHash(i);
        ASSERT_NE(h, 0u);
        if (round == 0) {
          seen[static_cast<size_t>(t)][i] = h;
        } else {
          // Memoization must be stable within a thread too.
          ASSERT_EQ(h, seen[static_cast<size_t>(t)][i]);
        }
      }
    }
  });
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);
  }
}

// --- MetricsRegistry / LatencyReservoir ------------------------------------

// Writers hammer the full outcome path while readers snapshot. Every
// snapshot must satisfy the registry's ordering contract:
//   latency.count <= Settled() <= admitted.
TEST(RaceHarness, MetricsSnapshotInvariantsUnderWriters) {
  service::MetricsRegistry metrics;
  std::atomic<bool> done{false};

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const service::MetricsSnapshot s = metrics.Snapshot();
      ASSERT_LE(s.latency.count, s.Settled());
      ASSERT_LE(s.Settled(), s.admitted);
    }
  });

  RunThreads(6, [&](int t) {
    for (int i = 0; i < 5000; ++i) {
      metrics.RecordAdmitted();
      service::QueryResponse response;
      response.status = (t + i) % 7 == 0 ? service::RequestStatus::kTimeout
                                         : service::RequestStatus::kOk;
      response.latency_seconds = 1e-6 * static_cast<double>(i);
      response.cache_hits = static_cast<uint64_t>(i % 3);
      metrics.RecordOutcome(response, /*method_recoveries=*/i % 2,
                            /*plan_fallbacks=*/i % 5 == 0);
    }
  });
  done.store(true, std::memory_order_release);
  reader.join();

  const service::MetricsSnapshot s = metrics.Snapshot();
  EXPECT_EQ(s.admitted, 6u * 5000u);
  EXPECT_EQ(s.Settled(), 6u * 5000u);
  EXPECT_EQ(s.latency.count, 6u * 5000u);
}

// The reservoir alone: concurrent Record with concurrent Summarize.
TEST(RaceHarness, LatencyReservoirHammer) {
  service::LatencyReservoir reservoir(/*capacity=*/256);
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto summary = reservoir.Summarize();
      ASSERT_GE(summary.max, 0.0);
      ASSERT_GE(summary.mean, 0.0);
    }
  });
  RunThreads(6, [&](int t) {
    for (int i = 0; i < 20000; ++i) {
      reservoir.Record(1e-6 * static_cast<double>(t * 7 + i % 100));
    }
  });
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(reservoir.Summarize().count, 6u * 20000u);
}

// --- StopToken -------------------------------------------------------------

// The release/acquire contract of stop_token.h: data written before
// RequestStop() must be visible after StopRequested() observes the stop.
TEST(RaceHarness, StopTokenPublishesPriorWrites) {
  for (int round = 0; round < 200; ++round) {
    util::StopSource source;
    int payload = 0;  // deliberately non-atomic: ordered by the flag
    std::thread initiator([&] {
      payload = 42;
      source.RequestStop();
    });
    std::thread worker([&] {
      util::StopToken token(&source);
      while (!token.StopRequested()) std::this_thread::yield();
      ASSERT_EQ(payload, 42);
    });
    initiator.join();
    worker.join();
  }
}

// --- PsiService ------------------------------------------------------------

service::ServiceOptions StormOptions(size_t workers) {
  service::ServiceOptions options;
  options.num_workers = workers;
  options.max_queue_depth = 8;  // small bound: force shedding under load
  options.engine.signature_depth = 1;
  return options;
}

// Submit storm with a deadline mix (including sub-microsecond deadlines
// that expire in flight) plus a Stats() poller, then a shutdown racing the
// last submissions. Exercises admission, engine checkout, the shared
// cache, deadline timeout and cancellation all at once.
TEST(RaceHarness, ServiceSubmitDeadlineShutdownStorm) {
  const graph::Graph g = testing::MakeFigure1Graph();
  service::PsiService service(g, StormOptions(3));
  const graph::QueryGraph query = testing::MakeFigure1Query();

  std::atomic<bool> done{false};
  std::thread poller([&] {
    while (!done.load(std::memory_order_acquire)) {
      const service::ServiceStats stats = service.Stats();
      ASSERT_LE(stats.metrics.latency.count, stats.metrics.Settled());
      ASSERT_LE(stats.metrics.Settled(), stats.metrics.admitted);
    }
  });

  std::atomic<uint64_t> settled_ok{0}, settled_other{0}, shed{0};
  RunThreads(6, [&](int t) {
    std::vector<std::future<service::QueryResponse>> futures;
    for (int i = 0; i < 120; ++i) {
      service::QueryRequest request;
      request.query = query;
      // Deadline mix: none / generous / already-hopeless.
      if (i % 3 == 1) request.deadline_seconds = 1.0;
      if (i % 3 == 2) request.deadline_seconds = 1e-7;
      if (t == 5 && i == 60) service.Shutdown();  // storm the shutdown path
      auto future = service.Submit(std::move(request));
      if (!future.has_value()) {
        shed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      futures.push_back(std::move(*future));
    }
    for (auto& future : futures) {
      const service::QueryResponse response = future.get();
      if (response.status == service::RequestStatus::kOk) {
        // Cancellation never corrupts answers: complete results are exact.
        ASSERT_EQ(response.valid_nodes, (std::vector<graph::NodeId>{0, 5}));
        settled_ok.fetch_add(1, std::memory_order_relaxed);
      } else {
        ASSERT_TRUE(response.status == service::RequestStatus::kTimeout ||
                    response.status == service::RequestStatus::kCancelled ||
                    response.status == service::RequestStatus::kRejected);
        settled_other.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  done.store(true, std::memory_order_release);
  poller.join();

  const service::ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.metrics.Settled(), settled_ok.load() + settled_other.load());
  EXPECT_EQ(stats.metrics.admitted, stats.metrics.Settled());
  EXPECT_EQ(stats.metrics.rejected, shed.load());
}

// Engine checkout/return under maximum contention: more client threads
// than workers, all answers must still be exact (shared cache + per-worker
// engines stay coherent).
TEST(RaceHarness, ServiceExactnessUnderContention) {
  const graph::Graph g = testing::MakeRandomGraph(200, 600, 4, /*seed=*/7);
  util::Rng rng(3);
  service::WorkloadSpec spec;
  spec.count = 6;
  spec.query_size = 4;
  const std::vector<service::QueryRequest> workload =
      service::ExtractWorkload(g, spec, rng);
  ASSERT_FALSE(workload.empty());

  service::ServiceOptions options;
  options.num_workers = 4;
  options.engine.signature_depth = 1;
  service::PsiService service(g, options);

  // Serial ground truth through the same service, before the storm.
  std::vector<std::vector<graph::NodeId>> expected;
  for (const service::QueryRequest& request : workload) {
    expected.push_back(service.Execute(request).valid_nodes);
  }

  RunThreads(8, [&](int t) {
    for (int round = 0; round < 4; ++round) {
      const size_t pick =
          (static_cast<size_t>(t) + static_cast<size_t>(round)) %
          workload.size();
      const service::QueryResponse response =
          service.Execute(workload[pick]);
      ASSERT_EQ(response.status, service::RequestStatus::kOk);
      ASSERT_EQ(response.valid_nodes, expected[pick]);
    }
  });
}

}  // namespace
}  // namespace psi
