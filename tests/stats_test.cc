#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace psi::util {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance of the classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats sequential;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    sequential.Add(x);
    (i % 2 == 0 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), sequential.count());
  EXPECT_NEAR(left.mean(), sequential.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), sequential.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), sequential.min());
  EXPECT_DOUBLE_EQ(left.max(), sequential.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.Add(1.0);
  a.Add(2.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 2.5);
}

TEST(QuantileTest, EmptyReturnsZero) {
  EXPECT_EQ(Quantile({}, 0.5), 0.0);
}

TEST(FormatDurationTest, PaperStyleUnits) {
  EXPECT_EQ(FormatDuration(-1.0), "NA");
  EXPECT_EQ(FormatDuration(0.0271), "27 ms");
  EXPECT_EQ(FormatDuration(27.0), "27.0 sec");
  EXPECT_EQ(FormatDuration(150.0), "2.5 min");
  EXPECT_EQ(FormatDuration(5.4 * 3600.0), "5.4 hrs");
}

TEST(FormatScientificTest, TwoDigits) {
  EXPECT_EQ(FormatScientific(1.3e7, 2), "1.3e+07");
  EXPECT_EQ(FormatScientific(58000000000.0, 2), "5.8e+10");
}

}  // namespace
}  // namespace psi::util
