// FSM mining through the serving layer and the batched submission path
// (DESIGN.md §17): the service-backed miner must reproduce the in-process
// frequent sets exactly, SubmitBatch must be answer-identical to sequential
// Submit at every search-thread count (bare and under chaos, including the
// service.batch fault site), and the batch_* counters must account exactly.
// Registered under the `fsm.` ctest prefix.

#include <algorithm>
#include <future>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "fsm/canonical.h"
#include "fsm/miner.h"
#include "fsm/support.h"
#include "graph/query_graph.h"
#include "service/request.h"
#include "service/service.h"
#include "shard/sharded_service.h"
#include "signature/builders.h"
#include "tests/test_fixtures.h"
#include "util/fault_injection.h"

namespace psi {
namespace {

class FsmServiceTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::Global().DisarmAll(); }
  void TearDown() override { util::FaultInjector::Global().DisarmAll(); }
};

/// Sorted canonical codes of a mined frequent set — the set-equality key
/// (supports are compared separately where exactness allows).
std::vector<std::string> FrequentCodes(const fsm::FsmResult& result) {
  std::vector<std::string> codes;
  codes.reserve(result.frequent.size());
  for (const fsm::MinedPattern& m : result.frequent) {
    codes.push_back(fsm::CanonicalCode(m.pattern));
  }
  std::sort(codes.begin(), codes.end());
  return codes;
}

// ---------------------------------------------------------------------------
// Frequent-set equality: kEnumeration vs kPsi vs service-backed.
// ---------------------------------------------------------------------------

class FsmMethodEquivalenceTest : public FsmServiceTest,
                                 public ::testing::WithParamInterface<uint64_t> {
};

TEST_P(FsmMethodEquivalenceTest, ServedMinerMatchesInProcessMethods) {
  const uint64_t seed = psi::testing::TestSeed(GetParam());
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(120, 360, 3, seed);

  fsm::FsmConfig base;
  base.min_support = 15;
  base.max_edges = 3;

  fsm::FsmConfig enum_config = base;
  enum_config.method = fsm::SupportMethod::kEnumeration;
  const fsm::FsmResult by_enum = fsm::FsmMiner(g, enum_config).Mine();
  ASSERT_TRUE(by_enum.complete);

  fsm::FsmConfig psi_config = base;
  psi_config.method = fsm::SupportMethod::kPsi;
  const fsm::FsmResult by_psi = fsm::FsmMiner(g, psi_config).Mine();
  ASSERT_TRUE(by_psi.complete);

  service::PsiService service(g, service::ServiceOptions{});
  fsm::FsmConfig served_config = base;
  served_config.service = &service;
  const fsm::FsmResult by_served = fsm::FsmMiner(g, served_config).Mine();
  ASSERT_TRUE(by_served.complete);

  // The frequent flag must agree pattern-for-pattern. Raw supports need
  // not: enumeration and kPsi report early-stop-capped lower bounds while
  // the served path counts exact MNI, which can exceed the cap.
  EXPECT_EQ(FrequentCodes(by_enum), FrequentCodes(by_psi));
  EXPECT_EQ(FrequentCodes(by_psi), FrequentCodes(by_served));
  EXPECT_EQ(by_enum.candidates_evaluated, by_served.candidates_evaluated);
  for (const fsm::MinedPattern& m : by_served.frequent) {
    EXPECT_GE(m.support, base.min_support);
  }
}

INSTANTIATE_TEST_SUITE_P(SeededGraphs, FsmMethodEquivalenceTest,
                         ::testing::Values(17, 29, 61));

// ---------------------------------------------------------------------------
// Miner determinism across thread counts.
// ---------------------------------------------------------------------------

TEST_F(FsmServiceTest, MinerIsDeterministicAcrossNumThreads) {
  const uint64_t seed = psi::testing::TestSeed(83);
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(140, 420, 3, seed);

  fsm::FsmConfig base;
  base.min_support = 12;
  base.max_edges = 3;
  base.method = fsm::SupportMethod::kPsi;

  base.num_threads = 1;
  const fsm::FsmResult reference = fsm::FsmMiner(g, base).Mine();
  ASSERT_TRUE(reference.complete);
  for (const size_t threads : {size_t{2}, size_t{4}}) {
    fsm::FsmConfig config = base;
    config.num_threads = threads;
    const fsm::FsmResult result = fsm::FsmMiner(g, config).Mine();
    ASSERT_TRUE(result.complete) << threads << " threads";
    ASSERT_EQ(result.frequent.size(), reference.frequent.size())
        << threads << " threads";
    // Ordered comparison: the mined list order itself is deterministic.
    for (size_t i = 0; i < result.frequent.size(); ++i) {
      EXPECT_EQ(fsm::CanonicalCode(result.frequent[i].pattern),
                fsm::CanonicalCode(reference.frequent[i].pattern));
      EXPECT_EQ(result.frequent[i].support, reference.frequent[i].support);
    }
  }
}

TEST_F(FsmServiceTest, ServedMinerIsDeterministicAcrossThreadCounts) {
  const uint64_t seed = psi::testing::TestSeed(97);
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(120, 360, 3, seed);

  std::optional<fsm::FsmResult> reference;
  // num_threads parallelizes canonicalization; num_workers the service's
  // evaluation. The mined list (patterns, order, exact-MNI supports) must
  // not depend on either.
  for (const auto [threads, workers] :
       {std::pair<size_t, size_t>{1, 1}, {4, 1}, {1, 3}, {4, 3}}) {
    service::ServiceOptions options;
    options.num_workers = workers;
    service::PsiService service(g, options);
    fsm::FsmConfig config;
    config.min_support = 15;
    config.max_edges = 3;
    config.num_threads = threads;
    config.service = &service;
    const fsm::FsmResult result = fsm::FsmMiner(g, config).Mine();
    ASSERT_TRUE(result.complete);
    if (!reference.has_value()) {
      reference = result;
      continue;
    }
    ASSERT_EQ(result.frequent.size(), reference->frequent.size());
    for (size_t i = 0; i < result.frequent.size(); ++i) {
      EXPECT_EQ(fsm::CanonicalCode(result.frequent[i].pattern),
                fsm::CanonicalCode(reference->frequent[i].pattern));
      EXPECT_EQ(result.frequent[i].support, reference->frequent[i].support);
    }
  }
}

// ---------------------------------------------------------------------------
// Differential: SubmitBatch vs sequential Submit.
// ---------------------------------------------------------------------------

/// Builds the mixed-member workload the batch path must degrade gracefully
/// over: pessimistic probes (the shared-context fast path), an optimistic
/// member, a kSmart member (engine checkout path), and a malformed member.
std::vector<service::QueryRequest> MakeMixedWorkload(const graph::Graph& g,
                                                     uint64_t seed) {
  std::vector<service::QueryRequest> requests;
  for (size_t i = 0; i < 6; ++i) {
    const graph::QueryGraph q =
        psi::testing::ExtractQuery(g, 4, seed * 131 + i);
    if (q.num_nodes() != 4) continue;
    service::QueryRequest request;
    request.id = requests.size() + 1;
    request.query = q;
    request.method = service::Method::kPessimistic;
    requests.push_back(std::move(request));
  }
  if (requests.size() > 1) {
    requests[1].method = service::Method::kOptimistic;
  }
  if (requests.size() > 2) {
    requests[2].method = service::Method::kSmart;
  }
  // Duplicate of the first probe: must be answered identically and counted
  // as a batch context hit.
  if (!requests.empty()) {
    service::QueryRequest repeat = requests[0];
    repeat.id = requests.size() + 1;
    requests.push_back(std::move(repeat));
  }
  service::QueryRequest malformed;  // no nodes, no pivot -> kInvalid
  malformed.id = requests.size() + 1;
  requests.push_back(std::move(malformed));
  return requests;
}

/// One differential pass: the same workload through sequential Submit and
/// through one SubmitBatch, on identically configured services. Per-query
/// status and valid_nodes must be byte-identical.
void ExpectBatchMatchesSequential(const graph::Graph& g,
                                  const std::vector<service::QueryRequest>&
                                      requests,
                                  size_t search_threads,
                                  const std::string& context) {
  SCOPED_TRACE(context + ", search_threads=" +
               std::to_string(search_threads));
  service::ServiceOptions options;
  options.num_workers = 2;
  options.search_threads = search_threads;

  std::vector<service::QueryResponse> sequential;
  {
    service::PsiService service(g, options);
    for (const service::QueryRequest& request : requests) {
      sequential.push_back(service.Execute(request));
    }
  }

  service::PsiService service(g, options);
  service::BatchRequest batch;
  batch.queries = requests;
  auto future = service.SubmitBatch(batch);
  ASSERT_TRUE(future.has_value());
  const service::BatchResponse response = future->get();

  ASSERT_EQ(response.responses.size(), sequential.size());
  EXPECT_NE(response.snapshot_version, 0u);
  for (size_t i = 0; i < sequential.size(); ++i) {
    SCOPED_TRACE("member " + std::to_string(i));
    EXPECT_EQ(response.responses[i].id, requests[i].id);
    EXPECT_EQ(response.responses[i].status, sequential[i].status);
    EXPECT_EQ(response.responses[i].valid_nodes, sequential[i].valid_nodes);
    if (response.responses[i].ok()) {
      EXPECT_EQ(response.responses[i].snapshot_version,
                response.snapshot_version);
    }
  }

  const service::MetricsSnapshot m = service.Stats().metrics;
  EXPECT_EQ(m.batch_submitted, 1u);
  EXPECT_EQ(m.batch_queries, requests.size());
  EXPECT_EQ(m.batch_context_hits, response.context_hits);
  EXPECT_EQ(m.batch_degraded, response.degraded_queries);
  EXPECT_EQ(m.Settled(), m.admitted);
}

class BatchDifferentialTest
    : public FsmServiceTest,
      public ::testing::WithParamInterface<std::tuple<uint64_t, size_t>> {};

TEST_P(BatchDifferentialTest, SubmitBatchMatchesSequentialSubmit) {
  const auto [base_seed, search_threads] = GetParam();
  const uint64_t seed = psi::testing::TestSeed(base_seed, search_threads);
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(180, 560, 3, seed);
  const std::vector<service::QueryRequest> requests =
      MakeMixedWorkload(g, seed);
  if (requests.size() < 4) GTEST_SKIP() << "extraction failed";

  ExpectBatchMatchesSequential(g, requests, search_threads, "bare");
  {
    // The engine-side chaos cocktail plus the batch fast-path fault: some
    // members abandon shared preparation mid-batch and are evaluated
    // standalone — the answers must not move.
    util::ScopedFaultSpec chaos(psi::testing::MakeChaosSchedule() +
                                ",service.batch=every:2");
    ExpectBatchMatchesSequential(g, requests, search_threads, "chaos");
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThreads, BatchDifferentialTest,
    ::testing::Combine(::testing::Values(19, 47),
                       ::testing::Values(1, 2, 4)));

// ---------------------------------------------------------------------------
// The service.batch fault site (graceful per-query degradation).
// ---------------------------------------------------------------------------

TEST_F(FsmServiceTest, ServiceBatchFaultDegradesEveryMemberWithoutAnswerDrift) {
  const uint64_t seed = psi::testing::TestSeed(101);
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(150, 450, 3, seed);

  std::vector<service::QueryRequest> requests;
  for (size_t i = 0; i < 4; ++i) {
    const graph::QueryGraph q =
        psi::testing::ExtractQuery(g, 4, seed * 37 + i);
    if (q.num_nodes() != 4) continue;
    service::QueryRequest request;
    request.id = i + 1;
    request.query = q;
    request.method = service::Method::kPessimistic;
    requests.push_back(std::move(request));
  }
  if (requests.empty()) GTEST_SKIP() << "extraction failed";

  std::vector<service::QueryResponse> sequential;
  {
    service::PsiService service(g, service::ServiceOptions{});
    for (const service::QueryRequest& request : requests) {
      sequential.push_back(service.Execute(request));
    }
  }

  const uint64_t fires_before = util::FaultInjector::Global().TotalFires();
  service::BatchResponse response;
  {
    util::ScopedFaultSpec faults("service.batch=always");
    service::PsiService service(g, service::ServiceOptions{});
    service::BatchRequest batch;
    batch.queries = requests;
    response = service.ExecuteBatch(batch);
    const service::MetricsSnapshot m = service.Stats().metrics;
    EXPECT_EQ(m.batch_degraded, response.degraded_queries);
    EXPECT_EQ(m.batch_context_hits, response.context_hits);
  }
  const bool fired = util::FaultInjector::Global().TotalFires() > fires_before;

  ASSERT_EQ(response.responses.size(), sequential.size());
  if (fired) {
    // Every well-formed pure member abandoned the fast path...
    EXPECT_EQ(response.degraded_queries, requests.size());
    EXPECT_EQ(response.context_hits, 0u);
  }
  // ...and the answers are identical either way.
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(response.responses[i].status, sequential[i].status);
    EXPECT_EQ(response.responses[i].valid_nodes, sequential[i].valid_nodes);
  }
}

// ---------------------------------------------------------------------------
// Batch admission accounting and edge cases.
// ---------------------------------------------------------------------------

TEST_F(FsmServiceTest, BatchCountersAccountExactly) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  service::PsiService service(g, service::ServiceOptions{});

  service::BatchRequest batch;
  for (int i = 0; i < 3; ++i) {
    service::QueryRequest request;
    request.query = psi::testing::MakeFigure1Query();
    request.method = service::Method::kPessimistic;
    batch.queries.push_back(std::move(request));
  }
  const service::BatchResponse response =
      service.ExecuteBatch(std::move(batch));
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.responses.size(), 3u);
  for (const service::QueryResponse& r : response.responses) {
    EXPECT_EQ(r.valid_nodes, (std::vector<graph::NodeId>{0, 5}));
  }
  // Identical member queries: the first prepares, the other two reuse.
  EXPECT_EQ(response.context_hits, 2u);
  EXPECT_EQ(response.degraded_queries, 0u);
  EXPECT_GT(response.latency_seconds, 0.0);

  const service::MetricsSnapshot m = service.Stats().metrics;
  EXPECT_EQ(m.batch_submitted, 1u);
  EXPECT_EQ(m.batch_rejected, 0u);
  EXPECT_EQ(m.batch_queries, 3u);
  EXPECT_EQ(m.batch_context_hits, 2u);
  EXPECT_EQ(m.batch_degraded, 0u);
  EXPECT_EQ(m.admitted, 3u);
  EXPECT_EQ(m.completed, 3u);
  EXPECT_EQ(m.Settled(), m.admitted);
  EXPECT_EQ(m.latency.count, m.Settled());

  // Member ids defaulted to batch_id * 1000 + index.
  EXPECT_NE(response.id, 0u);
  for (size_t i = 0; i < response.responses.size(); ++i) {
    EXPECT_EQ(response.responses[i].id, response.id * 1000 + i);
  }
}

TEST_F(FsmServiceTest, EmptyBatchSettlesCleanly) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  service::PsiService service(g, service::ServiceOptions{});
  auto future = service.SubmitBatch(service::BatchRequest{});
  ASSERT_TRUE(future.has_value());
  const service::BatchResponse response = future->get();
  EXPECT_TRUE(response.responses.empty());
  EXPECT_TRUE(response.ok());
  const service::MetricsSnapshot m = service.Stats().metrics;
  EXPECT_EQ(m.batch_submitted, 1u);
  EXPECT_EQ(m.batch_queries, 0u);
}

TEST_F(FsmServiceTest, ShutDownServiceRejectsBatchWhole) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  service::PsiService service(g, service::ServiceOptions{});
  service.Shutdown();

  service::BatchRequest batch;
  service::QueryRequest request;
  request.id = 7;
  request.query = psi::testing::MakeFigure1Query();
  batch.queries.push_back(std::move(request));
  EXPECT_FALSE(service.SubmitBatch(batch).has_value());

  const service::BatchResponse response = service.ExecuteBatch(batch);
  ASSERT_EQ(response.responses.size(), 1u);
  EXPECT_EQ(response.responses[0].status, service::RequestStatus::kRejected);
  EXPECT_EQ(response.responses[0].id, 7u);
  const service::MetricsSnapshot m = service.Stats().metrics;
  EXPECT_EQ(m.batch_rejected, 2u);
  EXPECT_EQ(m.rejected, 2u);
  EXPECT_EQ(m.batch_submitted, 0u);
}

// ---------------------------------------------------------------------------
// Sharded router: explicit batch rejection.
// ---------------------------------------------------------------------------

TEST_F(FsmServiceTest, ShardedServiceRejectsBatchesExplicitly) {
  const uint64_t seed = psi::testing::TestSeed(113);
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(80, 240, 3, seed);
  shard::ShardedServiceOptions options;
  options.build.partition.num_shards = 2;
  shard::ShardedPsiService service(g, options);

  service::BatchRequest batch;
  for (int i = 0; i < 2; ++i) {
    service::QueryRequest request;
    request.id = i + 1;
    request.query = psi::testing::MakeSingleNodeQuery(0);
    batch.queries.push_back(std::move(request));
  }
  EXPECT_FALSE(service.SubmitBatch(batch).has_value());
  const service::BatchResponse response = service.ExecuteBatch(batch);
  ASSERT_EQ(response.responses.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(response.responses[i].status,
              service::RequestStatus::kRejected);
    EXPECT_EQ(response.responses[i].id, i + 1);
  }
  const service::MetricsSnapshot m = service.Stats().metrics;
  EXPECT_EQ(m.batch_rejected, 2u);  // SubmitBatch + ExecuteBatch's inner one
  EXPECT_EQ(m.rejected, 4u);
  EXPECT_EQ(m.batch_submitted, 0u);
  EXPECT_EQ(m.batch_queries, 0u);
}

// ---------------------------------------------------------------------------
// Served support primitives.
// ---------------------------------------------------------------------------

TEST_F(FsmServiceTest, EvaluateSupportServedMatchesInProcessVerdicts) {
  const uint64_t seed = psi::testing::TestSeed(127);
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(120, 360, 3, seed);
  const auto sigs = signature::BuildMatrixSignatures(g, 2, g.num_labels());
  service::PsiService service(g, service::ServiceOptions{});

  for (uint64_t pattern_seed = 1; pattern_seed <= 6; ++pattern_seed) {
    // The extractor's pivot is irrelevant: both support paths probe every
    // pattern node as the pivot in turn.
    const graph::QueryGraph pattern =
        psi::testing::ExtractQuery(g, 3, seed * 17 + pattern_seed);
    if (pattern.num_nodes() != 3) continue;
    for (const uint64_t min_support : {uint64_t{2}, uint64_t{25}}) {
      const fsm::SupportResult in_process =
          fsm::EvaluateSupport(g, &sigs, pattern, min_support,
                               fsm::SupportMethod::kPsi, util::Deadline());
      const fsm::SupportResult served =
          fsm::EvaluateSupportServed(service, pattern, min_support);
      ASSERT_TRUE(in_process.complete);
      ASSERT_TRUE(served.complete);
      EXPECT_EQ(served.frequent, in_process.frequent);
      // Served support is the exact MNI; kPsi's is a capped lower bound.
      EXPECT_GE(served.support, in_process.support);
    }
  }
}

}  // namespace
}  // namespace psi
