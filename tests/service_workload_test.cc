#include "service/workload.h"

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "tests/test_fixtures.h"
#include "util/random.h"

namespace psi::service {
namespace {

TEST(WorkloadParseTest, Figure1TriangleLine) {
  const auto parsed =
      ParseWorkloadLine("v=0,1,2 e=0-1,1-2,0-2 p=0 d=50 m=smart id=9");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const QueryRequest& request = parsed.value();
  EXPECT_EQ(request.id, 9u);
  EXPECT_EQ(request.method, Method::kSmart);
  EXPECT_DOUBLE_EQ(request.deadline_seconds, 0.050);
  EXPECT_EQ(request.query.num_nodes(), 3u);
  EXPECT_EQ(request.query.num_edges(), 3u);
  EXPECT_EQ(request.query.pivot(), 0u);
  EXPECT_EQ(request.query.label(1), 1u);
}

TEST(WorkloadParseTest, TokensInAnyOrderAndDefaults) {
  const auto parsed = ParseWorkloadLine("p=1 v=3,4");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const QueryRequest& request = parsed.value();
  EXPECT_EQ(request.id, 0u);  // service assigns
  EXPECT_EQ(request.method, Method::kSmart);
  EXPECT_EQ(request.deadline_seconds, 0.0);
  EXPECT_EQ(request.query.num_nodes(), 2u);
  EXPECT_EQ(request.query.num_edges(), 0u);
  EXPECT_EQ(request.query.pivot(), 1u);
}

TEST(WorkloadParseTest, EdgeLabels) {
  const auto parsed = ParseWorkloadLine("v=0,0 e=0-1-7 p=0");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& q = parsed.value().query;
  ASSERT_EQ(q.neighbors(0).size(), 1u);
  EXPECT_EQ(q.neighbors(0)[0].second, 7u);
}

TEST(WorkloadParseTest, RejectsMalformedLines) {
  const char* bad[] = {
      "",                        // no nodes
      "v=0,1",                   // missing pivot
      "v=0,1 p=2",               // pivot out of range
      "v=0,,1 p=0",              // empty label piece
      "v=0,1 e=0-5 p=0",         // edge endpoint out of range
      "v=0,1 e=0-0 p=0",         // self loop
      "v=0,1 e=0 p=0",           // malformed edge
      "v=0,1 p=0 m=psychic",     // unknown method
      "v=0,1 p=0 d=-5",          // negative deadline
      "v=0,1 p=0 z=1",           // unknown key
      "hello",                   // not key=value
  };
  for (const char* line : bad) {
    EXPECT_FALSE(ParseWorkloadLine(line).ok()) << "accepted: " << line;
  }
}

TEST(WorkloadParseTest, FormatParseRoundTrip) {
  QueryRequest request;
  request.id = 42;
  request.query = testing::MakeFigure2Query();
  request.deadline_seconds = 0.125;
  request.method = Method::kPessimistic;

  const std::string line = FormatWorkloadLine(request);
  const auto reparsed = ParseWorkloadLine(line);
  ASSERT_TRUE(reparsed.ok()) << line << " -> " << reparsed.status().ToString();
  const QueryRequest& back = reparsed.value();
  EXPECT_EQ(back.id, request.id);
  EXPECT_EQ(back.method, request.method);
  EXPECT_DOUBLE_EQ(back.deadline_seconds, request.deadline_seconds);
  EXPECT_EQ(back.query.num_nodes(), request.query.num_nodes());
  EXPECT_EQ(back.query.num_edges(), request.query.num_edges());
  EXPECT_EQ(back.query.pivot(), request.query.pivot());
  EXPECT_EQ(back.query.Fingerprint(), request.query.Fingerprint());
}

// Property test: FormatWorkloadLine and ParseWorkloadLine are exact
// inverses over randomized requests — every optional token (d=, m=, id=,
// g=), edge labels, and token order included. Deadlines are drawn on a
// quarter-millisecond grid so the float text round-trips exactly.
TEST(WorkloadPropertyTest, FormatParseRoundTripsRandomizedRequests) {
  const uint64_t seed = testing::TestSeed(0x9041d);
  PSI_LOG_TEST_SEED(seed);
  util::Rng rng(seed);
  const char* graph_names[] = {"", "default", "social", "snapshot-2"};

  for (int iter = 0; iter < 300; ++iter) {
    QueryRequest request;
    const size_t n = 1 + rng.NextBounded(6);
    for (size_t v = 0; v < n; ++v) {
      request.query.AddNode(static_cast<graph::Label>(rng.NextBounded(10)));
    }
    for (size_t u = 0; u < n; ++u) {
      for (size_t v = u + 1; v < n; ++v) {
        if (rng.NextDouble() < 0.4) {
          // Mix default (omitted in the text form) and explicit edge labels.
          const graph::Label label =
              rng.NextDouble() < 0.5
                  ? graph::kDefaultEdgeLabel
                  : static_cast<graph::Label>(1 + rng.NextBounded(5));
          request.query.AddEdge(static_cast<graph::NodeId>(u),
                                static_cast<graph::NodeId>(v), label);
        }
      }
    }
    request.query.set_pivot(static_cast<graph::NodeId>(rng.NextBounded(n)));
    if (rng.NextDouble() < 0.5) {
      request.deadline_seconds = (1 + rng.NextBounded(400)) * 0.25e-3;
    }
    const Method methods[] = {Method::kSmart, Method::kOptimistic,
                              Method::kPessimistic};
    request.method = methods[rng.NextBounded(3)];
    if (rng.NextDouble() < 0.5) request.id = 1 + rng.NextBounded(1 << 20);
    request.graph = graph_names[rng.NextBounded(4)];

    const std::string line = FormatWorkloadLine(request);
    const auto reparsed = ParseWorkloadLine(line);
    ASSERT_TRUE(reparsed.ok())
        << line << " -> " << reparsed.status().ToString();
    const QueryRequest& back = reparsed.value();
    EXPECT_EQ(back.id, request.id) << line;
    EXPECT_EQ(back.method, request.method) << line;
    EXPECT_EQ(back.graph, request.graph) << line;
    EXPECT_DOUBLE_EQ(back.deadline_seconds, request.deadline_seconds) << line;
    EXPECT_EQ(back.query.pivot(), request.query.pivot()) << line;
    EXPECT_EQ(back.query.num_edges(), request.query.num_edges()) << line;
    EXPECT_EQ(back.query.Fingerprint(), request.query.Fingerprint()) << line;

    // The format is order-insensitive: a token shuffle parses identically.
    std::vector<std::string> tokens;
    std::istringstream split(line);
    std::string token;
    while (split >> token) tokens.push_back(token);
    for (size_t i = tokens.size(); i > 1; --i) {
      std::swap(tokens[i - 1], tokens[rng.NextBounded(i)]);
    }
    std::string shuffled;
    for (const std::string& t : tokens) {
      if (!shuffled.empty()) shuffled += ' ';
      shuffled += t;
    }
    const auto from_shuffled = ParseWorkloadLine(shuffled);
    ASSERT_TRUE(from_shuffled.ok())
        << shuffled << " -> " << from_shuffled.status().ToString();
    EXPECT_EQ(from_shuffled.value().query.Fingerprint(),
              request.query.Fingerprint())
        << shuffled;
    EXPECT_EQ(from_shuffled.value().graph, request.graph) << shuffled;
  }
}

TEST(WorkloadParseTest, GraphTokenRoundTripsAndRejectsEmpty) {
  const auto parsed = ParseWorkloadLine("v=0,1 e=0-1 p=0 g=social");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().graph, "social");
  EXPECT_NE(FormatWorkloadLine(parsed.value()).find(" g=social"),
            std::string::npos);
  EXPECT_FALSE(ParseWorkloadLine("v=0,1 p=0 g=").ok());
}

TEST(WorkloadIoTest, ReadSkipsCommentsAndBlankLines) {
  std::istringstream in(
      "# a comment\n"
      "\n"
      "v=0,1 e=0-1 p=0\n"
      "   # indented comment\n"
      "v=2 p=0 id=5\n");
  const auto requests = ReadWorkload(in);
  ASSERT_TRUE(requests.ok()) << requests.status().ToString();
  ASSERT_EQ(requests.value().size(), 2u);
  EXPECT_EQ(requests.value()[1].id, 5u);
}

TEST(WorkloadIoTest, ReadReportsOneBasedLineNumber) {
  std::istringstream in(
      "v=0,1 e=0-1 p=0\n"
      "not a request\n");
  const auto requests = ReadWorkload(in);
  ASSERT_FALSE(requests.ok());
  EXPECT_NE(requests.status().message().find("line 2"), std::string::npos)
      << requests.status().ToString();
}

TEST(WorkloadIoTest, WriteReadRoundTrip) {
  std::vector<QueryRequest> requests;
  QueryRequest a;
  a.id = 1;
  a.query = testing::MakeFigure1Query();
  QueryRequest b;
  b.id = 2;
  b.query = testing::MakeFigure2Query();
  b.deadline_seconds = 0.010;
  b.method = Method::kOptimistic;
  requests.push_back(a);
  requests.push_back(b);

  std::stringstream io;
  WriteWorkload(requests, io);
  const auto back = ReadWorkload(io);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().size(), 2u);
  EXPECT_EQ(back.value()[0].query.Fingerprint(), a.query.Fingerprint());
  EXPECT_EQ(back.value()[1].query.Fingerprint(), b.query.Fingerprint());
  EXPECT_EQ(back.value()[1].method, Method::kOptimistic);
}

TEST(ExtractWorkloadTest, RespectsSpecAndAssignsIds) {
  const graph::Graph g = testing::MakeRandomGraph(200, 800, 3, /*seed=*/7);
  WorkloadSpec spec;
  spec.count = 10;
  spec.query_size = 4;
  spec.deadline_ms_min = 10.0;
  spec.deadline_ms_max = 20.0;
  spec.method = Method::kOptimistic;
  util::Rng rng(99);
  const auto requests = ExtractWorkload(g, spec, rng);
  ASSERT_FALSE(requests.empty());
  ASSERT_LE(requests.size(), spec.count);
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(requests[i].id, i + 1);
    EXPECT_EQ(requests[i].method, Method::kOptimistic);
    EXPECT_EQ(requests[i].query.num_nodes(), spec.query_size);
    EXPECT_TRUE(requests[i].query.has_pivot());
    EXPECT_GE(requests[i].deadline_seconds, 0.010);
    EXPECT_LE(requests[i].deadline_seconds, 0.020);
  }
}

TEST(ExtractWorkloadTest, NoDeadlineWhenSpecDisablesIt) {
  const graph::Graph g = testing::MakeRandomGraph(100, 300, 2, /*seed=*/8);
  WorkloadSpec spec;
  spec.count = 3;
  spec.query_size = 3;
  util::Rng rng(100);
  for (const auto& request : ExtractWorkload(g, spec, rng)) {
    EXPECT_EQ(request.deadline_seconds, 0.0);
  }
}

}  // namespace
}  // namespace psi::service
