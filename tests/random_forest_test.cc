#include "ml/random_forest.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ml/metrics.h"

namespace psi::ml {
namespace {

/// Two interleaved half-moon-ish blobs (not linearly separable).
Dataset MakeBlobs(size_t n, util::Rng& rng) {
  Dataset data(2);
  for (size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(rng.NextBounded(2));
    const double angle = rng.NextDouble() * M_PI;
    const double radius = 1.0 + 0.15 * rng.NextGaussian();
    double x = std::cos(angle) * radius;
    double y = std::sin(angle) * radius;
    if (cls == 1) {
      x = 1.0 - x;
      y = 0.4 - y;
    }
    data.AddExample(
        std::vector<float>{static_cast<float>(x), static_cast<float>(y)},
        cls);
  }
  return data;
}

TEST(RandomForestTest, FitsNonlinearData) {
  util::Rng rng(1);
  const Dataset data = MakeBlobs(600, rng);
  RandomForest forest;
  ForestConfig config;
  config.num_trees = 25;
  forest.Train(data, 2, config, rng);
  ASSERT_TRUE(forest.trained());
  EXPECT_EQ(forest.num_trees(), 25u);

  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (forest.Predict(data.row(i)) == data.label(i)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / data.size(), 0.9);
}

TEST(RandomForestTest, GeneralizesToHeldOut) {
  util::Rng rng(2);
  const Dataset data = MakeBlobs(800, rng);
  const TrainTestSplit split = MakeTrainTestSplit(data.size(), 0.75, rng);
  RandomForest forest;
  forest.Train(data, split.train, 2, ForestConfig(), rng);
  std::vector<int32_t> predicted;
  std::vector<int32_t> actual;
  for (const size_t i : split.test) {
    predicted.push_back(forest.Predict(data.row(i)));
    actual.push_back(data.label(i));
  }
  EXPECT_GT(Accuracy(predicted, actual), 0.85);
}

TEST(RandomForestTest, ProbabilitiesNormalized) {
  util::Rng rng(3);
  const Dataset data = MakeBlobs(200, rng);
  RandomForest forest;
  forest.Train(data, 2, ForestConfig(), rng);
  const auto proba = forest.PredictProba(data.row(0));
  ASSERT_EQ(proba.size(), 2u);
  EXPECT_NEAR(proba[0] + proba[1], 1.0, 1e-9);
  EXPECT_GE(proba[0], 0.0);
  EXPECT_GE(proba[1], 0.0);
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  util::Rng rng_data(4);
  const Dataset data = MakeBlobs(300, rng_data);
  RandomForest a;
  RandomForest b;
  util::Rng rng_a(99);
  util::Rng rng_b(99);
  a.Train(data, 2, ForestConfig(), rng_a);
  b.Train(data, 2, ForestConfig(), rng_b);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(a.Predict(data.row(i)), b.Predict(data.row(i)));
  }
}

TEST(RandomForestTest, MultiClassPrediction) {
  Dataset data(1);
  util::Rng rng(5);
  for (int i = 0; i < 90; ++i) {
    data.AddExample(std::vector<float>{static_cast<float>(i)},
                    i < 30 ? 0 : (i < 60 ? 1 : 2));
  }
  RandomForest forest;
  forest.Train(data, 3, ForestConfig(), rng);
  EXPECT_EQ(forest.Predict(std::vector<float>{10.0f}), 0);
  EXPECT_EQ(forest.Predict(std::vector<float>{45.0f}), 1);
  EXPECT_EQ(forest.Predict(std::vector<float>{80.0f}), 2);
  EXPECT_EQ(forest.num_classes(), 3u);
}

TEST(RandomForestTest, EmptyTrainingStillPredicts) {
  Dataset data(2);
  RandomForest forest;
  util::Rng rng(6);
  forest.Train(data, std::vector<size_t>{}, 2, ForestConfig(), rng);
  EXPECT_EQ(forest.Predict(std::vector<float>{0.0f, 0.0f}), 0);
}

TEST(RandomForestTest, SingleClassData) {
  Dataset data(1);
  util::Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    data.AddExample(std::vector<float>{static_cast<float>(i)}, 1);
  }
  RandomForest forest;
  forest.Train(data, 2, ForestConfig(), rng);
  EXPECT_EQ(forest.Predict(std::vector<float>{5.0f}), 1);
}

}  // namespace
}  // namespace psi::ml
