#include "ml/linear_svm.h"

#include <vector>

#include <gtest/gtest.h>

namespace psi::ml {
namespace {

Dataset MakeLinearlySeparable(size_t n, util::Rng& rng) {
  Dataset data(2);
  for (size_t i = 0; i < n; ++i) {
    const bool positive = rng.NextBool(0.5);
    const float x0 = static_cast<float>(rng.NextGaussian() * 0.4 +
                                        (positive ? 2.0 : -2.0));
    const float x1 = static_cast<float>(rng.NextGaussian());
    data.AddExample(std::vector<float>{x0, x1}, positive ? 1 : 0);
  }
  return data;
}

TEST(LinearSvmTest, FitsSeparableData) {
  util::Rng rng(1);
  const Dataset data = MakeLinearlySeparable(400, rng);
  LinearSvm svm;
  svm.Train(data, 2, SvmConfig(), rng);
  ASSERT_TRUE(svm.trained());
  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (svm.Predict(data.row(i)) == data.label(i)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / data.size(), 0.95);
}

TEST(LinearSvmTest, DecisionFunctionOrdering) {
  util::Rng rng(2);
  const Dataset data = MakeLinearlySeparable(400, rng);
  LinearSvm svm;
  svm.Train(data, 2, SvmConfig(), rng);
  // A point deep in the positive blob should have a larger class-1 margin.
  const auto margins = svm.DecisionFunction(std::vector<float>{3.0f, 0.0f});
  EXPECT_GT(margins[1], margins[0]);
}

TEST(LinearSvmTest, MultiClassOneVsRest) {
  Dataset data(2);
  util::Rng rng(3);
  // Three well-separated clusters.
  const float centers[3][2] = {{0.0f, 3.0f}, {3.0f, -2.0f}, {-3.0f, -2.0f}};
  for (int i = 0; i < 450; ++i) {
    const int cls = i % 3;
    data.AddExample(
        std::vector<float>{
            centers[cls][0] + static_cast<float>(rng.NextGaussian() * 0.3f),
            centers[cls][1] + static_cast<float>(rng.NextGaussian() * 0.3f)},
        cls);
  }
  LinearSvm svm;
  svm.Train(data, 3, SvmConfig(), rng);
  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (svm.Predict(data.row(i)) == data.label(i)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / data.size(), 0.9);
}

TEST(LinearSvmTest, EmptyTrainingPredictsSomething) {
  Dataset data(2);
  LinearSvm svm;
  util::Rng rng(4);
  svm.Train(data, 2, SvmConfig(), rng);
  EXPECT_GE(svm.Predict(std::vector<float>{1.0f, 1.0f}), 0);
}

TEST(LinearSvmTest, DeterministicGivenSeed) {
  util::Rng rng_data(5);
  const Dataset data = MakeLinearlySeparable(200, rng_data);
  LinearSvm a;
  LinearSvm b;
  util::Rng rng_a(42);
  util::Rng rng_b(42);
  a.Train(data, 2, SvmConfig(), rng_a);
  b.Train(data, 2, SvmConfig(), rng_b);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(a.Predict(data.row(i)), b.Predict(data.row(i)));
  }
}

}  // namespace
}  // namespace psi::ml
