#include "match/search_scratch.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "match/candidates.h"
#include "match/psi_evaluator.h"
#include "signature/builders.h"
#include "tests/test_fixtures.h"

namespace psi::match {
namespace {

TEST(SearchScratchPoolTest, AcquireReleaseRoundTrip) {
  SearchScratchPool pool;
  EXPECT_EQ(pool.idle_count(), 0u);
  auto a = pool.Acquire();  // empty pool allocates
  auto b = pool.Acquire();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  SearchScratch* a_raw = a.get();
  pool.Release(std::move(a));
  EXPECT_EQ(pool.idle_count(), 1u);
  auto c = pool.Acquire();  // reuses the released arena, not a fresh one
  EXPECT_EQ(c.get(), a_raw);
  EXPECT_EQ(pool.idle_count(), 0u);
  pool.Release(std::move(b));
  pool.Release(std::move(c));
  EXPECT_EQ(pool.idle_count(), 2u);
}

TEST(SearchScratchPoolTest, LeaseReturnsOnDestruction) {
  SearchScratchPool pool;
  {
    SearchScratchPool::Lease lease(&pool);
    ASSERT_NE(lease.get(), nullptr);
    EXPECT_EQ(pool.idle_count(), 0u);
  }
  EXPECT_EQ(pool.idle_count(), 1u);
  {
    SearchScratchPool::Lease lease(nullptr);  // unpooled fallback
    ASSERT_NE(lease.get(), nullptr);
  }
  EXPECT_EQ(pool.idle_count(), 1u);  // private scratch never enters the pool
}

class ScratchedEvaluatorTest : public ::testing::Test {
 protected:
  ScratchedEvaluatorTest()
      : g_(psi::testing::MakeFigure1Graph()),
        q_(psi::testing::MakeFigure1Query()),
        gs_(signature::BuildSignatures(g_, signature::Method::kExploration, 2,
                                       g_.num_labels())),
        qs_(signature::BuildSignatures(q_, signature::Method::kExploration, 2,
                                       g_.num_labels())),
        plan_(MakeHeuristicPlan(q_, g_, q_.pivot())) {}

  std::vector<Outcome> EvaluateAll(PsiEvaluator& evaluator, PsiMode mode) {
    PsiEvaluator::Options options;
    options.mode = mode;
    std::vector<Outcome> outcomes;
    for (graph::NodeId u = 0; u < g_.num_nodes(); ++u) {
      outcomes.push_back(evaluator.EvaluateNode(u, options));
    }
    return outcomes;
  }

  graph::Graph g_;
  graph::QueryGraph q_;
  signature::SignatureMatrix gs_;
  signature::SignatureMatrix qs_;
  Plan plan_;
};

TEST_F(ScratchedEvaluatorTest, ExternalScratchMatchesInternal) {
  PsiEvaluator internal(g_, gs_);
  internal.BindQuery(q_, qs_, plan_);

  SearchScratch scratch;
  PsiEvaluator external(g_, gs_, &scratch);
  external.BindQuery(q_, qs_, plan_);

  for (const PsiMode mode : {PsiMode::kOptimistic, PsiMode::kPessimistic,
                             PsiMode::kSuperOptimistic}) {
    EXPECT_EQ(EvaluateAll(internal, mode), EvaluateAll(external, mode));
  }
}

TEST_F(ScratchedEvaluatorTest, ScratchSurvivesEvaluatorAndPoolsAcrossUses) {
  SearchScratchPool pool;
  std::vector<Outcome> first, second;
  {
    SearchScratchPool::Lease lease(&pool);
    PsiEvaluator evaluator(g_, gs_, lease.get());
    evaluator.BindQuery(q_, qs_, plan_);
    first = EvaluateAll(evaluator, PsiMode::kPessimistic);
  }
  {
    // A second evaluator picks up the same warmed arena from the pool.
    SearchScratchPool::Lease lease(&pool);
    PsiEvaluator evaluator(g_, gs_, lease.get());
    evaluator.BindQuery(q_, qs_, plan_);
    second = EvaluateAll(evaluator, PsiMode::kPessimistic);
  }
  EXPECT_EQ(first, second);
  EXPECT_EQ(pool.idle_count(), 1u);
}

TEST_F(ScratchedEvaluatorTest, RebindAcrossQueriesStaysCorrect) {
  // One scratch, alternating binds between two different queries: stale
  // state from the previous bind must never leak into the next.
  graph::QueryGraph single;
  single.AddNode(psi::testing::kB);
  single.set_pivot(0);
  const auto single_sigs = signature::BuildSignatures(
      single, signature::Method::kExploration, 2, g_.num_labels());
  Plan single_plan;
  single_plan.order = {0};

  SearchScratch scratch;
  PsiEvaluator evaluator(g_, gs_, &scratch);
  PsiEvaluator::Options options;
  for (int round = 0; round < 3; ++round) {
    evaluator.BindQuery(q_, qs_, plan_);
    EXPECT_EQ(evaluator.EvaluateNode(0, options), Outcome::kValid);
    EXPECT_EQ(evaluator.EvaluateNode(5, options), Outcome::kValid);
    EXPECT_EQ(evaluator.EvaluateNode(1, options), Outcome::kInvalid);

    evaluator.BindQuery(single, single_sigs, single_plan);
    EXPECT_EQ(evaluator.EvaluateNode(1, options), Outcome::kValid);
    EXPECT_EQ(evaluator.EvaluateNode(0, options), Outcome::kInvalid);
  }
}

TEST_F(ScratchedEvaluatorTest, RepeatedRebindIsIdempotent) {
  // The same-binding fast path must leave behavior unchanged.
  PsiEvaluator evaluator(g_, gs_);
  evaluator.BindQuery(q_, qs_, plan_);
  const auto before = EvaluateAll(evaluator, PsiMode::kOptimistic);
  for (int i = 0; i < 5; ++i) evaluator.BindQuery(q_, qs_, plan_);
  EXPECT_EQ(EvaluateAll(evaluator, PsiMode::kOptimistic), before);
}

TEST_F(ScratchedEvaluatorTest, FilterPivotCandidatesMatchesPerCandidateCheck) {
  const graph::Graph g = psi::testing::MakeRandomGraph(400, 1600, 3, 9);
  graph::QueryGraph q;
  const graph::NodeId a = q.AddNode(0);
  const graph::NodeId b = q.AddNode(1);
  const graph::NodeId c = q.AddNode(2);
  q.AddEdge(a, b);
  q.AddEdge(b, c);
  q.set_pivot(a);
  const auto gs = signature::BuildSignatures(
      g, signature::Method::kExploration, 2, g.num_labels());
  const auto qs = signature::BuildSignatures(
      q, signature::Method::kExploration, 2, g.num_labels());
  const Plan plan = MakeHeuristicPlan(q, g, a);

  PsiEvaluator evaluator(g, gs);
  evaluator.BindQuery(q, qs, plan);

  const auto all = ExtractPivotCandidates(g, q);
  ASSERT_FALSE(all.empty());

  // Reference: the scalar per-candidate pivot satisfaction check.
  std::vector<graph::NodeId> reference;
  for (const graph::NodeId u : all) {
    if (signature::Satisfies(gs.row(u), qs.row(a))) reference.push_back(u);
  }

  std::vector<graph::NodeId> bulk = all;
  SearchStats stats;
  const size_t pruned = evaluator.FilterPivotCandidates(bulk, &stats);
  EXPECT_EQ(bulk, reference);
  EXPECT_EQ(pruned, all.size() - reference.size());
  EXPECT_EQ(stats.signature_checks, all.size());

  // Survivors evaluated with pivot_prefiltered give the same outcomes as
  // the unfiltered pessimistic evaluation of the full list.
  PsiEvaluator::Options prefiltered;
  prefiltered.mode = PsiMode::kPessimistic;
  prefiltered.pivot_prefiltered = true;
  std::vector<graph::NodeId> valid_fast;
  for (const graph::NodeId u : bulk) {
    if (evaluator.EvaluateNode(u, prefiltered) == Outcome::kValid) {
      valid_fast.push_back(u);
    }
  }
  PsiEvaluator::Options plain;
  plain.mode = PsiMode::kPessimistic;
  std::vector<graph::NodeId> valid_reference;
  for (const graph::NodeId u : all) {
    if (evaluator.EvaluateNode(u, plain) == Outcome::kValid) {
      valid_reference.push_back(u);
    }
  }
  EXPECT_EQ(valid_fast, valid_reference);
}

}  // namespace
}  // namespace psi::match
