#include "ml/decision_tree.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace psi::ml {
namespace {

/// Linearly separable blobs: class = x0 > 0.
Dataset MakeSeparable(size_t n, util::Rng& rng) {
  Dataset data(2);
  for (size_t i = 0; i < n; ++i) {
    const bool positive = rng.NextBool(0.5);
    const float x0 =
        static_cast<float>(rng.NextGaussian() * 0.3 + (positive ? 1.0 : -1.0));
    const float x1 = static_cast<float>(rng.NextGaussian());
    data.AddExample(std::vector<float>{x0, x1}, positive ? 1 : 0);
  }
  return data;
}

std::vector<size_t> AllIndices(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

TEST(DecisionTreeTest, FitsSeparableData) {
  util::Rng rng(1);
  const Dataset data = MakeSeparable(400, rng);
  DecisionTree tree;
  tree.Train(data, AllIndices(data.size()), 2, TreeConfig(), rng);
  ASSERT_TRUE(tree.trained());
  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (tree.Predict(data.row(i)) == data.label(i)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / data.size(), 0.95);
}

TEST(DecisionTreeTest, PureDataSingleLeaf) {
  Dataset data(1);
  util::Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    data.AddExample(std::vector<float>{static_cast<float>(i)}, 1);
  }
  DecisionTree tree;
  tree.Train(data, AllIndices(10), 2, TreeConfig(), rng);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.Predict(std::vector<float>{3.0f}), 1);
}

TEST(DecisionTreeTest, EmptyTrainingPredictsZero) {
  Dataset data(1);
  DecisionTree tree;
  util::Rng rng(3);
  tree.Train(data, {}, 2, TreeConfig(), rng);
  EXPECT_EQ(tree.Predict(std::vector<float>{0.5f}), 0);
}

TEST(DecisionTreeTest, MaxDepthZeroIsMajorityVote) {
  Dataset data(1);
  util::Rng rng(4);
  for (int i = 0; i < 7; ++i) data.AddExample(std::vector<float>{0.0f}, 1);
  for (int i = 0; i < 3; ++i) data.AddExample(std::vector<float>{1.0f}, 0);
  DecisionTree tree;
  TreeConfig config;
  config.max_depth = 0;
  tree.Train(data, AllIndices(10), 2, config, rng);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.Predict(std::vector<float>{1.0f}), 1);  // majority
}

TEST(DecisionTreeTest, MultiClass) {
  // Three classes split by thresholds on one feature.
  Dataset data(1);
  util::Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    const float x = static_cast<float>(i);
    data.AddExample(std::vector<float>{x}, i < 20 ? 0 : (i < 40 ? 1 : 2));
  }
  DecisionTree tree;
  tree.Train(data, AllIndices(60), 3, TreeConfig(), rng);
  EXPECT_EQ(tree.Predict(std::vector<float>{5.0f}), 0);
  EXPECT_EQ(tree.Predict(std::vector<float>{30.0f}), 1);
  EXPECT_EQ(tree.Predict(std::vector<float>{55.0f}), 2);
}

TEST(DecisionTreeTest, ConstantFeaturesBecomeLeaf) {
  Dataset data(2);
  util::Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    data.AddExample(std::vector<float>{1.0f, 2.0f}, i % 2);
  }
  DecisionTree tree;
  tree.Train(data, AllIndices(10), 2, TreeConfig(), rng);
  // No split possible: one node only.
  EXPECT_EQ(tree.num_nodes(), 1u);
}

TEST(DecisionTreeTest, VotesSumToOnePerTree) {
  util::Rng rng(7);
  const Dataset data = MakeSeparable(100, rng);
  DecisionTree tree;
  tree.Train(data, AllIndices(data.size()), 2, TreeConfig(), rng);
  std::vector<double> votes(2, 0.0);
  tree.AccumulateVotes(data.row(0), votes);
  EXPECT_NEAR(votes[0] + votes[1], 1.0, 1e-6);
}

TEST(DecisionTreeTest, AdjacentFloatValuesSplitSafely) {
  // Regression guard: splitting between two adjacent floats must not
  // produce an empty partition (threshold equals the left value).
  Dataset data(1);
  util::Rng rng(8);
  const float a = 1.0f;
  const float b = std::nextafter(a, 2.0f);
  for (int i = 0; i < 5; ++i) data.AddExample(std::vector<float>{a}, 0);
  for (int i = 0; i < 5; ++i) data.AddExample(std::vector<float>{b}, 1);
  DecisionTree tree;
  tree.Train(data, AllIndices(10), 2, TreeConfig(), rng);
  EXPECT_EQ(tree.Predict(std::vector<float>{a}), 0);
  EXPECT_EQ(tree.Predict(std::vector<float>{b}), 1);
}

}  // namespace
}  // namespace psi::ml
