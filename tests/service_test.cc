#include "service/service.h"

#include <algorithm>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/smart_psi.h"
#include "graph/query_extractor.h"
#include "service/request.h"
#include "service/workload.h"
#include "tests/test_fixtures.h"
#include "util/random.h"

namespace psi::service {
namespace {

ServiceOptions SmallOptions(size_t workers) {
  ServiceOptions options;
  options.num_workers = workers;
  options.engine.signature_depth = 1;
  return options;
}

TEST(PsiServiceTest, Figure1QueryMatchesPaperAnswer) {
  const graph::Graph g = testing::MakeFigure1Graph();
  PsiService service(g, SmallOptions(2));
  QueryRequest request;
  request.id = 7;
  request.query = testing::MakeFigure1Query();
  const QueryResponse response = service.Execute(std::move(request));
  EXPECT_EQ(response.id, 7u);
  EXPECT_EQ(response.status, RequestStatus::kOk);
  EXPECT_EQ(response.valid_nodes, (std::vector<graph::NodeId>{0, 5}));
  EXPECT_GE(response.latency_seconds, response.exec_seconds);
}

TEST(PsiServiceTest, PureMethodsAgreeWithSmart) {
  const graph::Graph g = testing::MakeFigure1Graph();
  PsiService service(g, SmallOptions(2));
  for (const Method method :
       {Method::kSmart, Method::kOptimistic, Method::kPessimistic}) {
    QueryRequest request;
    request.query = testing::MakeFigure1Query();
    request.method = method;
    const QueryResponse response = service.Execute(std::move(request));
    EXPECT_EQ(response.status, RequestStatus::kOk) << MethodName(method);
    EXPECT_EQ(response.valid_nodes, (std::vector<graph::NodeId>{0, 5}))
        << MethodName(method);
  }
}

// The service's answers must be byte-identical to a serial engine's even
// when many clients hammer it at once: exactness is the paper's invariant
// (mispredictions cost time, never correctness), and sharing signatures +
// prediction cache across workers must not break it.
TEST(PsiServiceTest, ConcurrentAnswersAgreeWithSerialEngine) {
  const graph::Graph g = testing::MakeRandomGraph(300, 900, 4, /*seed=*/11);
  util::Rng rng(13);
  WorkloadSpec spec;
  spec.count = 12;
  spec.query_size = 4;
  const std::vector<QueryRequest> requests = ExtractWorkload(g, spec, rng);
  ASSERT_FALSE(requests.empty());

  core::SmartPsiConfig serial_config;
  serial_config.num_threads = 1;
  serial_config.signature_depth = 1;
  core::SmartPsiEngine serial(g, serial_config);
  std::vector<std::vector<graph::NodeId>> expected;
  for (const QueryRequest& request : requests) {
    expected.push_back(serial.Evaluate(request.query).valid_nodes);
  }

  PsiService service(g, SmallOptions(4));
  constexpr int kClientThreads = 4;
  constexpr int kRounds = 3;
  std::vector<std::thread> clients;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < requests.size(); ++i) {
          const QueryResponse response = service.Execute(requests[i]);
          if (response.status != RequestStatus::kOk ||
              response.valid_nodes != expected[i]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(mismatches.load(), 0);

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.metrics.admitted,
            static_cast<uint64_t>(kClientThreads) * kRounds * requests.size());
  EXPECT_EQ(stats.metrics.admitted, stats.metrics.Settled());
}

TEST(PsiServiceTest, ExpiredDeadlineReturnsTimeoutWithoutCrashing) {
  const graph::Graph g = testing::MakeRandomGraph(500, 2000, 3, /*seed=*/5);
  graph::QueryExtractor extractor(g);
  util::Rng rng(17);
  const auto queries = extractor.ExtractMany(5, 4, rng);
  ASSERT_FALSE(queries.empty());

  PsiService service(g, SmallOptions(2));
  for (const auto& query : queries) {
    QueryRequest request;
    request.query = query;
    request.deadline_seconds = 1e-9;  // expired before the worker sees it
    const QueryResponse response = service.Execute(std::move(request));
    EXPECT_EQ(response.status, RequestStatus::kTimeout);
  }
  // Partial answers must still be sound: re-running without a deadline
  // succeeds and the timed-out answers were subsets.
  for (const auto& query : queries) {
    QueryRequest request;
    request.query = query;
    const QueryResponse response = service.Execute(std::move(request));
    EXPECT_EQ(response.status, RequestStatus::kOk);
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.metrics.timed_out, queries.size());
  EXPECT_EQ(stats.metrics.completed, queries.size());
}

TEST(PsiServiceTest, TimedOutAnswerIsSubsetOfTrueAnswer) {
  const graph::Graph g = testing::MakeRandomGraph(400, 1600, 3, /*seed=*/23);
  graph::QueryExtractor extractor(g);
  util::Rng rng(29);
  const auto queries = extractor.ExtractMany(4, 3, rng);
  ASSERT_FALSE(queries.empty());

  PsiService service(g, SmallOptions(1));
  for (const auto& query : queries) {
    QueryRequest timed;
    timed.query = query;
    timed.deadline_seconds = 1e-6;
    const QueryResponse partial = service.Execute(std::move(timed));

    QueryRequest full;
    full.query = query;
    const QueryResponse complete = service.Execute(std::move(full));
    ASSERT_EQ(complete.status, RequestStatus::kOk);
    EXPECT_TRUE(std::includes(complete.valid_nodes.begin(),
                              complete.valid_nodes.end(),
                              partial.valid_nodes.begin(),
                              partial.valid_nodes.end()));
  }
}

TEST(PsiServiceTest, OverloadShedsInsteadOfHanging) {
  const graph::Graph g = testing::MakeRandomGraph(300, 1200, 3, /*seed=*/3);
  graph::QueryExtractor extractor(g);
  util::Rng rng(31);
  const auto queries = extractor.ExtractMany(4, 8, rng);
  ASSERT_FALSE(queries.empty());

  ServiceOptions options = SmallOptions(1);
  options.max_queue_depth = 1;
  PsiService service(g, options);

  constexpr size_t kOffered = 64;
  size_t rejected = 0;
  std::vector<std::future<QueryResponse>> futures;
  for (size_t i = 0; i < kOffered; ++i) {
    QueryRequest request;
    request.query = queries[i % queries.size()];
    auto future = service.Submit(std::move(request));
    if (future.has_value()) {
      futures.push_back(std::move(*future));
    } else {
      ++rejected;
    }
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().status, RequestStatus::kOk);
  }
  EXPECT_GT(rejected, 0u) << "queue bound 1 must shed under a burst of "
                          << kOffered;

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.metrics.rejected, rejected);
  EXPECT_EQ(stats.metrics.admitted, futures.size());
  EXPECT_EQ(stats.metrics.admitted + stats.metrics.rejected, kOffered);
  EXPECT_EQ(stats.metrics.Settled(), stats.metrics.admitted);
}

TEST(PsiServiceTest, MetricsCountersAddUpUnderConcurrentLoad) {
  const graph::Graph g = testing::MakeRandomGraph(200, 600, 3, /*seed=*/41);
  graph::QueryExtractor extractor(g);
  util::Rng rng(43);
  const auto queries = extractor.ExtractMany(4, 6, rng);
  ASSERT_FALSE(queries.empty());

  PsiService service(g, SmallOptions(3));
  constexpr int kThreads = 3;
  constexpr int kPerThread = 10;
  std::atomic<uint64_t> offered{0};
  std::atomic<uint64_t> shed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        QueryRequest request;
        request.query = queries[(t + i) % queries.size()];
        // Mix in some already-expired deadlines and one invalid request.
        if (i % 5 == 4) request.deadline_seconds = 1e-9;
        if (i % 7 == 6) request.query = graph::QueryGraph();
        offered.fetch_add(1);
        auto future = service.Submit(std::move(request));
        if (!future.has_value()) {
          shed.fetch_add(1);
          continue;
        }
        future->get();
      }
    });
  }
  for (auto& client : clients) client.join();

  const MetricsSnapshot m = service.Stats().metrics;
  EXPECT_EQ(m.admitted + m.rejected, offered.load());
  EXPECT_EQ(m.rejected, shed.load());
  EXPECT_EQ(m.Settled(), m.admitted);
  EXPECT_GT(m.completed, 0u);
  EXPECT_GT(m.timed_out, 0u);
  EXPECT_GT(m.invalid, 0u);
  EXPECT_EQ(m.latency.count, m.Settled());
  EXPECT_GT(m.latency.p99, 0.0);
  EXPECT_GE(m.latency.max, m.latency.p99);
}

TEST(PsiServiceTest, InvalidRequestsAreReportedNotExecuted) {
  const graph::Graph g = testing::MakeFigure1Graph();
  PsiService service(g, SmallOptions(1));

  QueryRequest empty;  // no nodes at all
  EXPECT_EQ(service.Execute(std::move(empty)).status, RequestStatus::kInvalid);

  QueryRequest no_pivot;
  no_pivot.query.AddNode(testing::kA);  // a node but no pivot
  EXPECT_EQ(service.Execute(std::move(no_pivot)).status,
            RequestStatus::kInvalid);

  EXPECT_EQ(service.Stats().metrics.invalid, 2u);
}

TEST(PsiServiceTest, AssignsIdsWhenCallerDoesNot) {
  const graph::Graph g = testing::MakeFigure1Graph();
  PsiService service(g, SmallOptions(1));
  QueryRequest request;
  request.query = testing::MakeFigure1Query();
  const QueryResponse a = service.Execute(request);
  const QueryResponse b = service.Execute(std::move(request));
  EXPECT_NE(a.id, 0u);
  EXPECT_NE(b.id, 0u);
  EXPECT_NE(a.id, b.id);
}

TEST(PsiServiceTest, SharedCacheSeesRepeatTraffic) {
  const graph::Graph g = testing::MakeRandomGraph(300, 900, 3, /*seed=*/47);
  graph::QueryExtractor extractor(g);
  util::Rng rng(53);
  const auto queries = extractor.ExtractMany(4, 2, rng);
  ASSERT_FALSE(queries.empty());

  PsiService service(g, SmallOptions(2));
  for (int round = 0; round < 3; ++round) {
    for (const auto& query : queries) {
      QueryRequest request;
      request.query = query;
      EXPECT_EQ(service.Execute(std::move(request)).status,
                RequestStatus::kOk);
    }
  }
  const ServiceStats stats = service.Stats();
  EXPECT_GT(stats.cache_entries, 0u);
  EXPECT_GT(stats.cache.inserts, 0u);
  // Rounds 2 and 3 re-run identical queries against a warm cache.
  EXPECT_GT(stats.cache.hits, 0u);
}

TEST(PsiServiceTest, ShutdownStopsAdmissionAndIsIdempotent) {
  const graph::Graph g = testing::MakeFigure1Graph();
  PsiService service(g, SmallOptions(2));
  QueryRequest request;
  request.query = testing::MakeFigure1Query();
  EXPECT_EQ(service.Execute(request).status, RequestStatus::kOk);

  service.Shutdown();
  service.Shutdown();  // must not hang or crash
  EXPECT_FALSE(service.Submit(request).has_value());
  EXPECT_EQ(service.Stats().metrics.completed, 1u);
}

TEST(PsiServiceTest, AdoptsPrecomputedSignatures) {
  const graph::Graph g = testing::MakeFigure1Graph();
  ServiceOptions options = SmallOptions(2);
  core::SmartPsiConfig config = options.engine;
  config.num_threads = 1;
  core::SmartPsiEngine reference(g, config);
  signature::SignatureMatrix sigs = reference.graph_signatures();

  PsiService service(g, std::move(sigs), options);
  EXPECT_EQ(service.Stats().signature_build_seconds, 0.0);
  QueryRequest request;
  request.query = testing::MakeFigure1Query();
  const QueryResponse response = service.Execute(std::move(request));
  EXPECT_EQ(response.status, RequestStatus::kOk);
  EXPECT_EQ(response.valid_nodes, (std::vector<graph::NodeId>{0, 5}));
}

}  // namespace
}  // namespace psi::service
