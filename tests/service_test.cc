#include "service/service.h"

#include <algorithm>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/smart_psi.h"
#include "graph/query_extractor.h"
#include "service/request.h"
#include "service/workload.h"
#include "tests/test_fixtures.h"
#include "util/random.h"

namespace psi::service {
namespace {

ServiceOptions SmallOptions(size_t workers) {
  ServiceOptions options;
  options.num_workers = workers;
  options.engine.signature_depth = 1;
  return options;
}

TEST(PsiServiceTest, Figure1QueryMatchesPaperAnswer) {
  const graph::Graph g = testing::MakeFigure1Graph();
  PsiService service(g, SmallOptions(2));
  QueryRequest request;
  request.id = 7;
  request.query = testing::MakeFigure1Query();
  const QueryResponse response = service.Execute(std::move(request));
  EXPECT_EQ(response.id, 7u);
  EXPECT_EQ(response.status, RequestStatus::kOk);
  EXPECT_EQ(response.valid_nodes, (std::vector<graph::NodeId>{0, 5}));
  EXPECT_GE(response.latency_seconds, response.exec_seconds);
}

TEST(PsiServiceTest, PureMethodsAgreeWithSmart) {
  const graph::Graph g = testing::MakeFigure1Graph();
  PsiService service(g, SmallOptions(2));
  for (const Method method :
       {Method::kSmart, Method::kOptimistic, Method::kPessimistic}) {
    QueryRequest request;
    request.query = testing::MakeFigure1Query();
    request.method = method;
    const QueryResponse response = service.Execute(std::move(request));
    EXPECT_EQ(response.status, RequestStatus::kOk) << MethodName(method);
    EXPECT_EQ(response.valid_nodes, (std::vector<graph::NodeId>{0, 5}))
        << MethodName(method);
  }
}

// The service's answers must be byte-identical to a serial engine's even
// when many clients hammer it at once: exactness is the paper's invariant
// (mispredictions cost time, never correctness), and sharing signatures +
// prediction cache across workers must not break it.
TEST(PsiServiceTest, ConcurrentAnswersAgreeWithSerialEngine) {
  const graph::Graph g = testing::MakeRandomGraph(300, 900, 4, /*seed=*/11);
  util::Rng rng(13);
  WorkloadSpec spec;
  spec.count = 12;
  spec.query_size = 4;
  const std::vector<QueryRequest> requests = ExtractWorkload(g, spec, rng);
  ASSERT_FALSE(requests.empty());

  core::SmartPsiConfig serial_config;
  serial_config.num_threads = 1;
  serial_config.signature_depth = 1;
  core::SmartPsiEngine serial(g, serial_config);
  std::vector<std::vector<graph::NodeId>> expected;
  for (const QueryRequest& request : requests) {
    expected.push_back(serial.Evaluate(request.query).valid_nodes);
  }

  PsiService service(g, SmallOptions(4));
  constexpr int kClientThreads = 4;
  constexpr int kRounds = 3;
  std::vector<std::thread> clients;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < requests.size(); ++i) {
          const QueryResponse response = service.Execute(requests[i]);
          if (response.status != RequestStatus::kOk ||
              response.valid_nodes != expected[i]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(mismatches.load(), 0);

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.metrics.admitted,
            static_cast<uint64_t>(kClientThreads) * kRounds * requests.size());
  EXPECT_EQ(stats.metrics.admitted, stats.metrics.Settled());
}

TEST(PsiServiceTest, ExpiredDeadlineReturnsTimeoutWithoutCrashing) {
  const graph::Graph g = testing::MakeRandomGraph(500, 2000, 3, /*seed=*/5);
  graph::QueryExtractor extractor(g);
  util::Rng rng(17);
  const auto queries = extractor.ExtractMany(5, 4, rng);
  ASSERT_FALSE(queries.empty());

  PsiService service(g, SmallOptions(2));
  for (const auto& query : queries) {
    QueryRequest request;
    request.query = query;
    request.deadline_seconds = 1e-9;  // expired before the worker sees it
    const QueryResponse response = service.Execute(std::move(request));
    EXPECT_EQ(response.status, RequestStatus::kTimeout);
  }
  // Partial answers must still be sound: re-running without a deadline
  // succeeds and the timed-out answers were subsets.
  for (const auto& query : queries) {
    QueryRequest request;
    request.query = query;
    const QueryResponse response = service.Execute(std::move(request));
    EXPECT_EQ(response.status, RequestStatus::kOk);
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.metrics.timed_out, queries.size());
  EXPECT_EQ(stats.metrics.completed, queries.size());
}

TEST(PsiServiceTest, TimedOutAnswerIsSubsetOfTrueAnswer) {
  const graph::Graph g = testing::MakeRandomGraph(400, 1600, 3, /*seed=*/23);
  graph::QueryExtractor extractor(g);
  util::Rng rng(29);
  const auto queries = extractor.ExtractMany(4, 3, rng);
  ASSERT_FALSE(queries.empty());

  PsiService service(g, SmallOptions(1));
  for (const auto& query : queries) {
    QueryRequest timed;
    timed.query = query;
    timed.deadline_seconds = 1e-6;
    const QueryResponse partial = service.Execute(std::move(timed));

    QueryRequest full;
    full.query = query;
    const QueryResponse complete = service.Execute(std::move(full));
    ASSERT_EQ(complete.status, RequestStatus::kOk);
    EXPECT_TRUE(std::includes(complete.valid_nodes.begin(),
                              complete.valid_nodes.end(),
                              partial.valid_nodes.begin(),
                              partial.valid_nodes.end()));
  }
}

TEST(PsiServiceTest, OverloadShedsInsteadOfHanging) {
  const graph::Graph g = testing::MakeRandomGraph(300, 1200, 3, /*seed=*/3);
  graph::QueryExtractor extractor(g);
  util::Rng rng(31);
  const auto queries = extractor.ExtractMany(4, 8, rng);
  ASSERT_FALSE(queries.empty());

  ServiceOptions options = SmallOptions(1);
  options.max_queue_depth = 1;
  PsiService service(g, options);

  constexpr size_t kOffered = 64;
  size_t rejected = 0;
  std::vector<std::future<QueryResponse>> futures;
  for (size_t i = 0; i < kOffered; ++i) {
    QueryRequest request;
    request.query = queries[i % queries.size()];
    auto future = service.Submit(std::move(request));
    if (future.has_value()) {
      futures.push_back(std::move(*future));
    } else {
      ++rejected;
    }
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().status, RequestStatus::kOk);
  }
  EXPECT_GT(rejected, 0u) << "queue bound 1 must shed under a burst of "
                          << kOffered;

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.metrics.rejected, rejected);
  EXPECT_EQ(stats.metrics.admitted, futures.size());
  EXPECT_EQ(stats.metrics.admitted + stats.metrics.rejected, kOffered);
  EXPECT_EQ(stats.metrics.Settled(), stats.metrics.admitted);
}

TEST(PsiServiceTest, MetricsCountersAddUpUnderConcurrentLoad) {
  const graph::Graph g = testing::MakeRandomGraph(200, 600, 3, /*seed=*/41);
  graph::QueryExtractor extractor(g);
  util::Rng rng(43);
  const auto queries = extractor.ExtractMany(4, 6, rng);
  ASSERT_FALSE(queries.empty());

  PsiService service(g, SmallOptions(3));
  constexpr int kThreads = 3;
  constexpr int kPerThread = 10;
  std::atomic<uint64_t> offered{0};
  std::atomic<uint64_t> shed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        QueryRequest request;
        request.query = queries[(t + i) % queries.size()];
        // Mix in some already-expired deadlines and one invalid request.
        if (i % 5 == 4) request.deadline_seconds = 1e-9;
        if (i % 7 == 6) request.query = graph::QueryGraph();
        offered.fetch_add(1);
        auto future = service.Submit(std::move(request));
        if (!future.has_value()) {
          shed.fetch_add(1);
          continue;
        }
        future->get();
      }
    });
  }
  for (auto& client : clients) client.join();

  const MetricsSnapshot m = service.Stats().metrics;
  EXPECT_EQ(m.admitted + m.rejected, offered.load());
  EXPECT_EQ(m.rejected, shed.load());
  EXPECT_EQ(m.Settled(), m.admitted);
  EXPECT_GT(m.completed, 0u);
  EXPECT_GT(m.timed_out, 0u);
  EXPECT_GT(m.invalid, 0u);
  EXPECT_EQ(m.latency.count, m.Settled());
  EXPECT_GT(m.latency.p99, 0.0);
  EXPECT_GE(m.latency.max, m.latency.p99);
}

TEST(PsiServiceTest, InvalidRequestsAreReportedNotExecuted) {
  const graph::Graph g = testing::MakeFigure1Graph();
  PsiService service(g, SmallOptions(1));

  QueryRequest empty;  // no nodes at all
  EXPECT_EQ(service.Execute(std::move(empty)).status, RequestStatus::kInvalid);

  QueryRequest no_pivot;
  no_pivot.query.AddNode(testing::kA);  // a node but no pivot
  EXPECT_EQ(service.Execute(std::move(no_pivot)).status,
            RequestStatus::kInvalid);

  EXPECT_EQ(service.Stats().metrics.invalid, 2u);
}

TEST(PsiServiceTest, AssignsIdsWhenCallerDoesNot) {
  const graph::Graph g = testing::MakeFigure1Graph();
  PsiService service(g, SmallOptions(1));
  QueryRequest request;
  request.query = testing::MakeFigure1Query();
  const QueryResponse a = service.Execute(request);
  const QueryResponse b = service.Execute(std::move(request));
  EXPECT_NE(a.id, 0u);
  EXPECT_NE(b.id, 0u);
  EXPECT_NE(a.id, b.id);
}

TEST(PsiServiceTest, SharedCacheSeesRepeatTraffic) {
  const graph::Graph g = testing::MakeRandomGraph(300, 900, 3, /*seed=*/47);
  graph::QueryExtractor extractor(g);
  util::Rng rng(53);
  const auto queries = extractor.ExtractMany(4, 2, rng);
  ASSERT_FALSE(queries.empty());

  PsiService service(g, SmallOptions(2));
  for (int round = 0; round < 3; ++round) {
    for (const auto& query : queries) {
      QueryRequest request;
      request.query = query;
      EXPECT_EQ(service.Execute(std::move(request)).status,
                RequestStatus::kOk);
    }
  }
  const ServiceStats stats = service.Stats();
  EXPECT_GT(stats.cache_entries, 0u);
  EXPECT_GT(stats.cache.inserts, 0u);
  // Rounds 2 and 3 re-run identical queries against a warm cache.
  EXPECT_GT(stats.cache.hits, 0u);
}

TEST(PsiServiceTest, ShutdownStopsAdmissionAndIsIdempotent) {
  const graph::Graph g = testing::MakeFigure1Graph();
  PsiService service(g, SmallOptions(2));
  QueryRequest request;
  request.query = testing::MakeFigure1Query();
  EXPECT_EQ(service.Execute(request).status, RequestStatus::kOk);

  service.Shutdown();
  service.Shutdown();  // must not hang or crash
  EXPECT_FALSE(service.Submit(request).has_value());
  EXPECT_EQ(service.Stats().metrics.completed, 1u);
}

// An infeasible query (label absent from the data graph) is a *valid*
// request with an empty answer — it must settle kOk with no nodes through
// every method, not error out, for both the smart and pure execution paths.
TEST(PsiServiceTest, InfeasibleQuerySettlesOkAndEmptyForEveryMethod) {
  const graph::Graph g = testing::MakeFigure1Graph();
  PsiService service(g, SmallOptions(2));
  for (const Method method :
       {Method::kSmart, Method::kOptimistic, Method::kPessimistic}) {
    QueryRequest request;
    request.query.AddNode(12345);  // not in the Figure 1 alphabet
    request.query.set_pivot(0);
    request.method = method;
    const QueryResponse response = service.Execute(std::move(request));
    EXPECT_EQ(response.status, RequestStatus::kOk) << MethodName(method);
    EXPECT_TRUE(response.valid_nodes.empty()) << MethodName(method);
  }
  EXPECT_EQ(service.Stats().metrics.completed, 3u);
}

// --- Catalog-backed serving (DESIGN.md §12) --------------------------------

TEST(PsiServiceTest, ResponsesReportTheirSnapshotVersion) {
  const graph::Graph g = testing::MakeFigure1Graph();
  PsiService service(g, SmallOptions(1));
  QueryRequest request;
  request.query = testing::MakeFigure1Query();
  const QueryResponse response = service.Execute(std::move(request));
  EXPECT_EQ(response.status, RequestStatus::kOk);
  EXPECT_EQ(response.snapshot_version, 1u);
}

TEST(PsiServiceTest, UnknownGraphNameSettlesNotFound) {
  const graph::Graph g = testing::MakeFigure1Graph();
  PsiService service(g, SmallOptions(2));
  QueryRequest request;
  request.query = testing::MakeFigure1Query();
  request.graph = "no-such-graph";
  const QueryResponse response = service.Execute(std::move(request));
  EXPECT_EQ(response.status, RequestStatus::kNotFound);
  EXPECT_EQ(response.snapshot_version, 0u);
  EXPECT_TRUE(response.valid_nodes.empty());

  const MetricsSnapshot m = service.Stats().metrics;
  EXPECT_EQ(m.not_found, 1u);
  EXPECT_EQ(m.Settled(), m.admitted) << "not_found must settle, not leak";
}

TEST(PsiServiceTest, RoutesRequestsByGraphName) {
  // Two graphs with different answers to the same query: Figure 1 answers
  // {0, 5}; a single A–B–C path answers {0} only.
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.BuildAndPublish("fig1", testing::MakeFigure1Graph())
                  .ok());
  graph::GraphBuilder path;
  const graph::NodeId a = path.AddNode(testing::kA);
  const graph::NodeId b = path.AddNode(testing::kB);
  const graph::NodeId c = path.AddNode(testing::kC);
  path.AddEdge(a, b);
  path.AddEdge(b, c);
  path.AddEdge(c, a);
  ASSERT_TRUE(catalog.BuildAndPublish("path", std::move(path).Build()).ok());

  ServiceOptions options = SmallOptions(2);
  options.default_graph = "fig1";
  PsiService service(&catalog, options);

  QueryRequest to_default;
  to_default.query = testing::MakeFigure1Query();
  const QueryResponse from_default = service.Execute(std::move(to_default));
  EXPECT_EQ(from_default.valid_nodes, (std::vector<graph::NodeId>{0, 5}));

  QueryRequest to_path;
  to_path.query = testing::MakeFigure1Query();
  to_path.graph = "path";
  const QueryResponse from_path = service.Execute(std::move(to_path));
  EXPECT_EQ(from_path.valid_nodes, (std::vector<graph::NodeId>{0}));
  EXPECT_NE(from_path.snapshot_version, from_default.snapshot_version);
}

TEST(PsiServiceTest, HotSwapRebindsNewRequestsAndReleasesTheOldSnapshot) {
  GraphCatalog catalog;
  ASSERT_TRUE(
      catalog.BuildAndPublish("g", testing::MakeFigure1Graph()).ok());
  ServiceOptions options = SmallOptions(2);
  options.default_graph = "g";
  PsiService service(&catalog, options);

  QueryRequest before;
  before.query = testing::MakeFigure1Query();
  const QueryResponse v1 = service.Execute(std::move(before));
  EXPECT_EQ(v1.snapshot_version, 1u);
  EXPECT_EQ(v1.valid_nodes, (std::vector<graph::NodeId>{0, 5}));

  std::weak_ptr<const GraphSnapshot> old_generation = catalog.Resolve("g");
  ASSERT_TRUE(
      catalog.BuildAndPublish("g", testing::MakeFigure1Graph()).ok());

  QueryRequest after;
  after.query = testing::MakeFigure1Query();
  const QueryResponse v2 = service.Execute(std::move(after));
  EXPECT_EQ(v2.snapshot_version, 2u);
  EXPECT_EQ(v2.valid_nodes, (std::vector<graph::NodeId>{0, 5}));

  // Nothing holds the old generation once its last request settled: the
  // engines keep only non-owning views, so the memory is already gone.
  EXPECT_TRUE(old_generation.expired());
  EXPECT_EQ(service.Stats().metrics.snapshot_swaps, 1u);
}

TEST(PsiServiceTest, PinGaugeDrainsToZeroAfterTheLastResponse) {
  const graph::Graph g = testing::MakeRandomGraph(200, 600, 3, /*seed=*/61);
  graph::QueryExtractor extractor(g);
  util::Rng rng(67);
  const auto queries = extractor.ExtractMany(4, 6, rng);
  ASSERT_FALSE(queries.empty());

  PsiService service(g, SmallOptions(3));
  std::vector<std::future<QueryResponse>> futures;
  for (int round = 0; round < 4; ++round) {
    for (const auto& query : queries) {
      QueryRequest request;
      request.query = query;
      auto future = service.Submit(std::move(request));
      if (future.has_value()) futures.push_back(std::move(*future));
    }
  }
  for (auto& future : futures) {
    EXPECT_NE(future.get().snapshot_version, 0u);
  }
  // Pins drop before the response future is fulfilled, so after the last
  // get() the gauge must already read zero — no grace period.
  const std::vector<CatalogEntry> entries = service.catalog().List();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].pins, 0u);
}

TEST(PsiServiceTest, CacheIsSaltedPerSnapshotGeneration) {
  const graph::Graph g = testing::MakeRandomGraph(300, 900, 3, /*seed=*/71);
  graph::QueryExtractor extractor(g);
  util::Rng rng(73);
  const auto queries = extractor.ExtractMany(4, 3, rng);
  ASSERT_FALSE(queries.empty());

  PsiService service(g, SmallOptions(2));
  auto run_rounds = [&] {
    for (int round = 0; round < 3; ++round) {
      for (const auto& query : queries) {
        QueryRequest request;
        request.query = query;
        EXPECT_EQ(service.Execute(std::move(request)).status,
                  RequestStatus::kOk);
      }
    }
  };
  run_rounds();
  const uint64_t hits_before = service.Stats().cache.hits;
  EXPECT_GT(hits_before, 0u);

  // Swap to a new generation of the same graph and re-run: keys are salted
  // per version, so the epoch tripwire must never fire — a cross-version
  // key collision would surface as a nonzero epoch_drops count.
  ASSERT_TRUE(service.catalog()
                  .BuildAndPublish(service.options().default_graph, g.Clone())
                  .ok());
  run_rounds();
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache.epoch_drops, 0u);
  EXPECT_GT(stats.cache.hits, hits_before)
      << "the new generation must warm its own cache entries";
}

TEST(PsiServiceTest, AdoptsPrecomputedSignatures) {
  const graph::Graph g = testing::MakeFigure1Graph();
  ServiceOptions options = SmallOptions(2);
  core::SmartPsiConfig config = options.engine;
  config.num_threads = 1;
  core::SmartPsiEngine reference(g, config);
  signature::SignatureMatrix sigs = reference.graph_signatures();

  PsiService service(g, std::move(sigs), options);
  EXPECT_EQ(service.Stats().signature_build_seconds, 0.0);
  QueryRequest request;
  request.query = testing::MakeFigure1Query();
  const QueryResponse response = service.Execute(std::move(request));
  EXPECT_EQ(response.status, RequestStatus::kOk);
  EXPECT_EQ(response.valid_nodes, (std::vector<graph::NodeId>{0, 5}));
}

}  // namespace
}  // namespace psi::service
