// Figure 9 reproduction: SmartPSI (2 worker threads) vs the two-threaded
// racing baseline (§4.1) on YouTube (a) and Twitter (b), query sizes 4-8.
//
// The baseline spawns two fresh threads per candidate node (optimist vs
// pessimist race), reproducing the thread-churn overhead the paper
// criticizes; SmartPSI uses two workers to evaluate two candidates in
// parallel. Budget-exceeding cells are censored.

#include <iostream>

#include "bench/bench_util.h"
#include "core/smart_psi.h"
#include "core/two_threaded.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {
using namespace psi;
}  // namespace

int main() {
  const int scale = bench::BenchScale();
  const size_t queries_per_size = 2 * scale;
  const double budget = 3.0 * scale;

  bench::PrintBanner("Figure 9: SmartPSI (2 threads) vs two-threaded baseline",
                     "Abdelhamid et al., EDBT'19, Figure 9 (a,b)",
                     std::to_string(queries_per_size) +
                         " queries per size; per-cell budget " +
                         std::to_string(budget) + "s.");

  for (const graph::Dataset dataset :
       {graph::Dataset::kYouTube, graph::Dataset::kTwitter}) {
    const graph::Graph g = bench::MakeStandIn(dataset);

    core::SmartPsiConfig config;
    config.num_threads = 2;
    core::SmartPsiEngine smart(g, config);
    core::TwoThreadedBaseline baseline(g, smart.graph_signatures());

    util::TablePrinter table({"Size", "Two-threaded", "SmartPSI(2thr)"});
    for (const size_t size : {4u, 5u, 6u, 7u, 8u}) {
      const auto workload = bench::MakeWorkload(g, size, queries_per_size);
      std::vector<std::string> row{std::to_string(size)};

      {
        util::WallTimer timer;
        bool censored = false;
        const util::Deadline deadline = util::Deadline::After(budget);
        for (const auto& q : workload) {
          core::TwoThreadedBaseline::Options options;
          options.spawn_per_node = true;
          options.deadline = deadline;
          censored |= !baseline.Evaluate(q, options).complete;
          if (deadline.Expired()) break;
        }
        row.push_back(bench::TimeCell(timer.Seconds(), censored, budget));
      }
      {
        util::WallTimer timer;
        bool censored = false;
        const util::Deadline deadline = util::Deadline::After(budget);
        for (const auto& q : workload) {
          censored |= !smart.Evaluate(q, deadline).complete;
          if (deadline.Expired()) break;
        }
        row.push_back(bench::TimeCell(timer.Seconds(), censored, budget));
      }
      table.AddRow(row);
    }
    std::cout << "\n--- Figure 9: " << graph::GetDatasetSpec(dataset).name
              << " (" << g.num_nodes() << " nodes, " << g.num_edges()
              << " edges) ---\n";
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): the baseline can win on the "
               "smallest queries\n(no training overhead), then loses and "
               "times out as query size grows.\n";
  return 0;
}
