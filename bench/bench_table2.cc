// Table 2 reproduction: TurboIso vs TurboIso+ vs SmartPSI wall time on the
// Human dataset, query sizes 4-7.
//
// TurboIso answers the PSI query by enumerating *all* embeddings and
// projecting; TurboIso+ stops at the first embedding per pivot candidate;
// SmartPSI uses the full ML pipeline. Runs past the per-size budget print
// as ">limit" (the paper's ">24 hrs").

#include <iostream>

#include "bench/bench_util.h"
#include "core/smart_psi.h"
#include "match/turbo_iso.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {
using namespace psi;
}  // namespace

int main() {
  const int scale = bench::BenchScale();
  const size_t queries_per_size = 8 * scale;
  const double budget = 3.0 * scale;  // seconds per (system, size)

  bench::PrintBanner("Table 2: PSI solutions on Human",
                     "Abdelhamid et al., EDBT'19, Table 2",
                     std::to_string(queries_per_size) +
                         " queries per size; per-cell budget " +
                         std::to_string(budget) + "s.");

  const graph::Graph g = bench::MakeStandIn(graph::Dataset::kHuman);
  std::cout << "Human stand-in: " << g.num_nodes() << " nodes, "
            << g.num_edges() << " edges, " << g.num_labels() << " labels\n";

  core::SmartPsiEngine engine(g);
  match::TurboIsoEngine turbo(g);

  const std::vector<size_t> sizes = {4, 5, 6, 7};
  util::TablePrinter table({"Query size", "4", "5", "6", "7"});
  std::vector<std::string> turbo_row{"TurboIso"};
  std::vector<std::string> plus_row{"TurboIso+"};
  std::vector<std::string> smart_row{"SmartPSI"};

  for (const size_t size : sizes) {
    const auto workload = bench::MakeWorkload(g, size, queries_per_size);

    // TurboIso (enumerate-and-project).
    {
      util::WallTimer timer;
      bool censored = false;
      const util::Deadline deadline = util::Deadline::After(budget);
      for (const auto& q : workload) {
        match::MatchingEngine::Options options;
        options.deadline = deadline;
        const auto projection = turbo.ProjectPivot(q, options);
        censored |= !projection.complete;
        if (deadline.Expired()) break;
      }
      turbo_row.push_back(bench::TimeCell(timer.Seconds(), censored, budget));
    }

    // TurboIso+ (first match per pivot candidate).
    {
      util::WallTimer timer;
      bool censored = false;
      const util::Deadline deadline = util::Deadline::After(budget);
      for (const auto& q : workload) {
        match::MatchingEngine::Options options;
        options.deadline = deadline;
        const auto psi = turbo.EvaluatePsi(q, options);
        censored |= !psi.complete;
        if (deadline.Expired()) break;
      }
      plus_row.push_back(bench::TimeCell(timer.Seconds(), censored, budget));
    }

    // SmartPSI.
    {
      util::WallTimer timer;
      bool censored = false;
      const util::Deadline deadline = util::Deadline::After(budget);
      for (const auto& q : workload) {
        const auto result = engine.Evaluate(q, deadline);
        censored |= !result.complete;
        if (deadline.Expired()) break;
      }
      smart_row.push_back(bench::TimeCell(timer.Seconds(), censored, budget));
    }
  }
  table.AddRow(turbo_row);
  table.AddRow(plus_row);
  table.AddRow(smart_row);
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): TurboIso slowest by orders of "
               "magnitude;\nTurboIso+ in between; SmartPSI fastest at every "
               "size.\n";
  return 0;
}
