// Micro-benchmarks (google-benchmark) for the hot primitives: signature
// construction, satisfaction tests, satisfiability scoring, signature
// hashing, the batched candidate kernels, Random Forest inference, per-node
// PSI evaluation, and plan generation.
//
// After the google-benchmark run, main() times the scalar vs batched
// candidate pipeline directly and writes machine-readable results to
// BENCH_candidates.json (override the path with PSI_BENCH_JSON).

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <string>

#include <benchmark/benchmark.h>

#include "core/prediction_cache.h"
#include "core/query_context.h"
#include "graph/datasets.h"
#include "graph/query_extractor.h"
#include "match/candidates.h"
#include "match/plan.h"
#include "match/psi_evaluator.h"
#include "ml/random_forest.h"
#include "signature/builders.h"
#include "signature/kernels.h"
#include "signature/sparse_requirement.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace {

using namespace psi;

const graph::Graph& BenchGraph() {
  static const graph::Graph* g = new graph::Graph(
      graph::MakeDataset(graph::Dataset::kYeast, 1.0, 42));
  return *g;
}

const signature::SignatureMatrix& BenchSigs(signature::Method method) {
  static const signature::SignatureMatrix* expl =
      new signature::SignatureMatrix(signature::BuildSignatures(
          BenchGraph(), signature::Method::kExploration, 2,
          BenchGraph().num_labels()));
  static const signature::SignatureMatrix* matr =
      new signature::SignatureMatrix(signature::BuildSignatures(
          BenchGraph(), signature::Method::kMatrix, 2,
          BenchGraph().num_labels()));
  return method == signature::Method::kExploration ? *expl : *matr;
}

void BM_BuildExplorationSignatures(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  for (auto _ : state) {
    auto sigs = signature::BuildExplorationSignatures(
        g, static_cast<uint32_t>(state.range(0)), g.num_labels());
    benchmark::DoNotOptimize(sigs.row(0).data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_nodes()));
}
BENCHMARK(BM_BuildExplorationSignatures)->Arg(1)->Arg(2)->Arg(3);

void BM_BuildMatrixSignatures(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  for (auto _ : state) {
    auto sigs = signature::BuildMatrixSignatures(
        g, static_cast<uint32_t>(state.range(0)), g.num_labels());
    benchmark::DoNotOptimize(sigs.row(0).data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_nodes()));
}
BENCHMARK(BM_BuildMatrixSignatures)->Arg(1)->Arg(2)->Arg(3);

void BM_Satisfies(benchmark::State& state) {
  const auto& sigs = BenchSigs(signature::Method::kMatrix);
  size_t i = 0;
  for (auto _ : state) {
    const auto a = sigs.row(i % sigs.num_rows());
    const auto b = sigs.row((i * 7 + 1) % sigs.num_rows());
    benchmark::DoNotOptimize(signature::Satisfies(a, b));
    ++i;
  }
}
BENCHMARK(BM_Satisfies);

void BM_SatisfiabilityScore(benchmark::State& state) {
  const auto& sigs = BenchSigs(signature::Method::kMatrix);
  size_t i = 0;
  for (auto _ : state) {
    const auto a = sigs.row(i % sigs.num_rows());
    const auto b = sigs.row((i * 13 + 3) % sigs.num_rows());
    benchmark::DoNotOptimize(signature::SatisfiabilityScore(a, b));
    ++i;
  }
}
BENCHMARK(BM_SatisfiabilityScore);

void BM_HashSignature(benchmark::State& state) {
  const auto& sigs = BenchSigs(signature::Method::kMatrix);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        signature::HashSignature(sigs.row(i % sigs.num_rows())));
    ++i;
  }
}
BENCHMARK(BM_HashSignature);

void BM_RowHash(benchmark::State& state) {
  // Memoized counterpart of BM_HashSignature: steady-state cache-hit cost.
  const auto& sigs = BenchSigs(signature::Method::kMatrix);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sigs.RowHash(i % sigs.num_rows()));
    ++i;
  }
}
BENCHMARK(BM_RowHash);

/// Shared input of the candidate-pipeline benches: one realistic sparse
/// query requirement plus a large shuffled candidate pool (ids repeat once
/// past the graph size — each id is still an independent row sweep).
struct CandidateWorkload {
  std::vector<float> required;
  signature::SparseRequirement req;
  std::vector<graph::NodeId> pool;
};

const CandidateWorkload& BenchWorkload() {
  static const CandidateWorkload* w = [] {
    auto* work = new CandidateWorkload();
    const graph::Graph& g = BenchGraph();
    graph::QueryExtractor extractor(g);
    util::Rng rng(13);
    const graph::QueryGraph q = extractor.Extract(5, rng);
    const auto qs = signature::BuildSignatures(
        q, signature::Method::kMatrix, 2, g.num_labels());
    const auto row = qs.row(q.pivot());
    work->required.assign(row.begin(), row.end());
    work->req.Assign(work->required);
    work->pool.resize(1 << 16);
    for (auto& c : work->pool) {
      c = static_cast<graph::NodeId>(rng.NextBounded(g.num_nodes()));
    }
    return work;
  }();
  return *w;
}

std::vector<graph::NodeId> WorkloadSlice(size_t n) {
  const auto& pool = BenchWorkload().pool;
  return {pool.begin(), pool.begin() + std::min(n, pool.size())};
}

/// Pre-pipeline reference: dense O(L) satisfaction test per candidate.
void ScalarFilter(const signature::SignatureMatrix& sigs,
                  std::span<const float> required,
                  std::span<const graph::NodeId> candidates,
                  std::vector<graph::NodeId>& kept) {
  kept.clear();
  for (const graph::NodeId c : candidates) {
    if (signature::Satisfies(sigs.row(c), required)) kept.push_back(c);
  }
}

/// Pre-pipeline reference: dense per-candidate score + stable sort.
void ScalarRank(const signature::SignatureMatrix& sigs,
                std::span<const float> required,
                std::vector<graph::NodeId>& candidates,
                std::vector<float>& scores, std::vector<uint32_t>& order,
                std::vector<graph::NodeId>& tmp) {
  scores.resize(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    scores[i] = static_cast<float>(
        signature::SatisfiabilityScore(sigs.row(candidates[i]), required));
  }
  order.resize(candidates.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return scores[a] > scores[b];
  });
  tmp.resize(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) tmp[i] = candidates[order[i]];
  candidates.swap(tmp);
}

void BM_FilterCandidates(benchmark::State& state) {
  const auto& sigs = BenchSigs(signature::Method::kMatrix);
  const auto& w = BenchWorkload();
  const auto list = WorkloadSlice(static_cast<size_t>(state.range(0)));
  const bool batched = state.range(1) == 1;
  std::vector<graph::NodeId> buf;
  for (auto _ : state) {
    if (batched) {
      buf.assign(list.begin(), list.end());
      signature::FilterCandidates(sigs, w.req, buf);
    } else {
      ScalarFilter(sigs, w.required, list, buf);
    }
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(list.size()));
  state.SetLabel(batched ? "batched" : "scalar");
}
BENCHMARK(BM_FilterCandidates)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Args({16384, 0})
    ->Args({16384, 1});

void BM_ScoreAndRank(benchmark::State& state) {
  const auto& sigs = BenchSigs(signature::Method::kMatrix);
  const auto& w = BenchWorkload();
  const auto list = WorkloadSlice(static_cast<size_t>(state.range(0)));
  const bool batched = state.range(1) == 1;
  std::vector<graph::NodeId> buf;
  std::vector<float> scores;
  std::vector<uint32_t> order;
  std::vector<graph::NodeId> tmp;
  signature::RankScratch scratch;
  for (auto _ : state) {
    buf.assign(list.begin(), list.end());
    if (batched) {
      signature::ScoreAndRank(sigs, w.req, buf, scratch);
    } else {
      ScalarRank(sigs, w.required, buf, scores, order, tmp);
    }
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(list.size()));
  state.SetLabel(batched ? "batched" : "scalar");
}
BENCHMARK(BM_ScoreAndRank)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Args({16384, 0})
    ->Args({16384, 1});

void BM_PredictionCacheLookup(benchmark::State& state) {
  // Warm-cache lookups on the path that carries the cache.lookup.* fault
  // hooks. Comparing an injection-ON build (sites disarmed — the hook is
  // one relaxed atomic load) against an -DPSI_ENABLE_FAULT_INJECTION=OFF
  // build (hooks compiled out) bounds the chaos layer's hot-path cost.
  util::FaultInjector::Global().DisarmAll();
  core::PredictionCache cache;
  constexpr uint64_t kEntries = 4096;
  for (uint64_t h = 0; h < kEntries; ++h) {
    cache.Insert(h * 0x9e3779b97f4a7c15ULL, {h % 2 == 0, uint32_t(h % 8)});
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.Lookup((i % kEntries) * 0x9e3779b97f4a7c15ULL));
    ++i;
  }
  state.SetLabel(PSI_FAULT_INJECTION_ENABLED ? "hooks-on(disarmed)"
                                             : "hooks-off");
}
BENCHMARK(BM_PredictionCacheLookup);

void BM_RandomForestPredict(benchmark::State& state) {
  const auto& sigs = BenchSigs(signature::Method::kMatrix);
  ml::Dataset data(sigs.num_labels());
  util::Rng rng(1);
  for (size_t i = 0; i < 500; ++i) {
    data.AddExample(sigs.row(i % sigs.num_rows()),
                    static_cast<int32_t>(rng.NextBounded(2)));
  }
  ml::RandomForest forest;
  ml::ForestConfig config;
  config.num_trees = static_cast<size_t>(state.range(0));
  forest.Train(data, 2, config, rng);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.Predict(sigs.row(i % sigs.num_rows())));
    ++i;
  }
}
BENCHMARK(BM_RandomForestPredict)->Arg(10)->Arg(20)->Arg(50);

void BM_PsiEvaluateNode(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  const auto& sigs = BenchSigs(signature::Method::kMatrix);
  graph::QueryExtractor extractor(g);
  util::Rng rng(7);
  const graph::QueryGraph q =
      extractor.Extract(static_cast<size_t>(state.range(0)), rng);
  if (q.num_nodes() == 0) {
    state.SkipWithError("query extraction failed");
    return;
  }
  const core::QueryContext ctx = core::PrepareQuery(g, sigs, q);
  match::PsiEvaluator evaluator(g, sigs);
  evaluator.BindQuery(q, ctx.query_sigs,
                      match::MakeHeuristicPlan(q, g, q.pivot()));
  const auto mode = state.range(1) == 0 ? match::PsiMode::kOptimistic
                                        : match::PsiMode::kPessimistic;
  match::PsiEvaluator::Options options;
  options.mode = mode;
  size_t i = 0;
  for (auto _ : state) {
    const graph::NodeId u = ctx.candidates[i % ctx.candidates.size()];
    benchmark::DoNotOptimize(evaluator.EvaluateNode(u, options));
    ++i;
  }
}
BENCHMARK(BM_PsiEvaluateNode)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({6, 0})
    ->Args({6, 1});

void BM_MakeHeuristicPlan(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  graph::QueryExtractor extractor(g);
  util::Rng rng(9);
  const graph::QueryGraph q = extractor.Extract(8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        match::MakeHeuristicPlan(q, g, q.pivot()).order.data());
  }
}
BENCHMARK(BM_MakeHeuristicPlan);

void BM_ExtractPivotCandidates(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  graph::QueryExtractor extractor(g);
  util::Rng rng(11);
  const graph::QueryGraph q = extractor.Extract(5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(match::ExtractPivotCandidates(g, q).data());
  }
}
BENCHMARK(BM_ExtractPivotCandidates);

/// Best-of-R wall-clock ns/candidate for one closure over a list of size n.
template <typename Fn>
double TimeNsPerCandidate(size_t n, Fn&& fn) {
  constexpr int kReps = 5;
  // Scale inner iterations so each rep does a comparable amount of work
  // regardless of list size.
  const int iters = static_cast<int>(std::max<size_t>(3, (1 << 21) / n));
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    util::WallTimer timer;
    for (int i = 0; i < iters; ++i) fn();
    const double ns =
        timer.Seconds() * 1e9 / (static_cast<double>(iters) * n);
    if (rep == 0 || ns < best) best = ns;
  }
  return best;
}

/// Times the scalar (dense per-candidate) vs batched (sparse bulk kernel)
/// candidate pipeline and writes BENCH_candidates.json — the PR's
/// machine-checkable speedup artifact.
void WriteCandidateKernelReport() {
  const auto& sigs = BenchSigs(signature::Method::kMatrix);
  const auto& w = BenchWorkload();
  const char* env = std::getenv("PSI_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_candidates.json";
  std::ofstream out(path);
  out << "{\n  \"bench\": \"candidate_pipeline\",\n"
      << "  \"graph\": \"yeast\",\n"
      << "  \"num_labels\": " << sigs.num_labels() << ",\n"
      << "  \"requirement_nnz\": " << w.req.nnz() << ",\n"
      << "  \"avx2\": " << (signature::KernelsUseAvx2() ? "true" : "false")
      << ",\n  \"sizes\": [";
  bool first = true;
  for (const size_t n : {size_t{1024}, size_t{4096}, size_t{16384}}) {
    const auto list = WorkloadSlice(n);
    std::vector<graph::NodeId> buf;
    std::vector<float> scores;
    std::vector<uint32_t> order;
    std::vector<graph::NodeId> tmp;
    signature::RankScratch scratch;

    const double filter_scalar = TimeNsPerCandidate(
        n, [&] { ScalarFilter(sigs, w.required, list, buf); });
    const double filter_batched = TimeNsPerCandidate(n, [&] {
      buf.assign(list.begin(), list.end());
      signature::FilterCandidates(sigs, w.req, buf);
    });
    const double rank_scalar = TimeNsPerCandidate(n, [&] {
      buf.assign(list.begin(), list.end());
      ScalarRank(sigs, w.required, buf, scores, order, tmp);
    });
    const double rank_batched = TimeNsPerCandidate(n, [&] {
      buf.assign(list.begin(), list.end());
      signature::ScoreAndRank(sigs, w.req, buf, scratch);
    });

    out << (first ? "" : ",") << "\n    {\"candidates\": " << n
        << ",\n     \"filter\": {\"scalar_ns_per_candidate\": "
        << filter_scalar
        << ", \"batched_ns_per_candidate\": " << filter_batched
        << ", \"speedup\": " << filter_scalar / filter_batched << "},\n"
        << "     \"rank\": {\"scalar_ns_per_candidate\": " << rank_scalar
        << ", \"batched_ns_per_candidate\": " << rank_batched
        << ", \"speedup\": " << rank_scalar / rank_batched << "}}";
    first = false;
  }
  out << "\n  ]\n}\n";
  printf("wrote %s (avx2=%d)\n", path.c_str(),
         signature::KernelsUseAvx2() ? 1 : 0);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteCandidateKernelReport();
  return 0;
}
