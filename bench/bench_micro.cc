// Micro-benchmarks (google-benchmark) for the hot primitives: signature
// construction, satisfaction tests, satisfiability scoring, signature
// hashing, Random Forest inference, per-node PSI evaluation, and plan
// generation.

#include <benchmark/benchmark.h>

#include "core/query_context.h"
#include "graph/datasets.h"
#include "graph/query_extractor.h"
#include "match/candidates.h"
#include "match/plan.h"
#include "match/psi_evaluator.h"
#include "ml/random_forest.h"
#include "signature/builders.h"

namespace {

using namespace psi;

const graph::Graph& BenchGraph() {
  static const graph::Graph* g = new graph::Graph(
      graph::MakeDataset(graph::Dataset::kYeast, 1.0, 42));
  return *g;
}

const signature::SignatureMatrix& BenchSigs(signature::Method method) {
  static const signature::SignatureMatrix* expl =
      new signature::SignatureMatrix(signature::BuildSignatures(
          BenchGraph(), signature::Method::kExploration, 2,
          BenchGraph().num_labels()));
  static const signature::SignatureMatrix* matr =
      new signature::SignatureMatrix(signature::BuildSignatures(
          BenchGraph(), signature::Method::kMatrix, 2,
          BenchGraph().num_labels()));
  return method == signature::Method::kExploration ? *expl : *matr;
}

void BM_BuildExplorationSignatures(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  for (auto _ : state) {
    auto sigs = signature::BuildExplorationSignatures(
        g, static_cast<uint32_t>(state.range(0)), g.num_labels());
    benchmark::DoNotOptimize(sigs.row(0).data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_nodes()));
}
BENCHMARK(BM_BuildExplorationSignatures)->Arg(1)->Arg(2)->Arg(3);

void BM_BuildMatrixSignatures(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  for (auto _ : state) {
    auto sigs = signature::BuildMatrixSignatures(
        g, static_cast<uint32_t>(state.range(0)), g.num_labels());
    benchmark::DoNotOptimize(sigs.row(0).data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_nodes()));
}
BENCHMARK(BM_BuildMatrixSignatures)->Arg(1)->Arg(2)->Arg(3);

void BM_Satisfies(benchmark::State& state) {
  const auto& sigs = BenchSigs(signature::Method::kMatrix);
  size_t i = 0;
  for (auto _ : state) {
    const auto a = sigs.row(i % sigs.num_rows());
    const auto b = sigs.row((i * 7 + 1) % sigs.num_rows());
    benchmark::DoNotOptimize(signature::Satisfies(a, b));
    ++i;
  }
}
BENCHMARK(BM_Satisfies);

void BM_SatisfiabilityScore(benchmark::State& state) {
  const auto& sigs = BenchSigs(signature::Method::kMatrix);
  size_t i = 0;
  for (auto _ : state) {
    const auto a = sigs.row(i % sigs.num_rows());
    const auto b = sigs.row((i * 13 + 3) % sigs.num_rows());
    benchmark::DoNotOptimize(signature::SatisfiabilityScore(a, b));
    ++i;
  }
}
BENCHMARK(BM_SatisfiabilityScore);

void BM_HashSignature(benchmark::State& state) {
  const auto& sigs = BenchSigs(signature::Method::kMatrix);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        signature::HashSignature(sigs.row(i % sigs.num_rows())));
    ++i;
  }
}
BENCHMARK(BM_HashSignature);

void BM_RandomForestPredict(benchmark::State& state) {
  const auto& sigs = BenchSigs(signature::Method::kMatrix);
  ml::Dataset data(sigs.num_labels());
  util::Rng rng(1);
  for (size_t i = 0; i < 500; ++i) {
    data.AddExample(sigs.row(i % sigs.num_rows()),
                    static_cast<int32_t>(rng.NextBounded(2)));
  }
  ml::RandomForest forest;
  ml::ForestConfig config;
  config.num_trees = static_cast<size_t>(state.range(0));
  forest.Train(data, 2, config, rng);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.Predict(sigs.row(i % sigs.num_rows())));
    ++i;
  }
}
BENCHMARK(BM_RandomForestPredict)->Arg(10)->Arg(20)->Arg(50);

void BM_PsiEvaluateNode(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  const auto& sigs = BenchSigs(signature::Method::kMatrix);
  graph::QueryExtractor extractor(g);
  util::Rng rng(7);
  const graph::QueryGraph q =
      extractor.Extract(static_cast<size_t>(state.range(0)), rng);
  if (q.num_nodes() == 0) {
    state.SkipWithError("query extraction failed");
    return;
  }
  const core::QueryContext ctx = core::PrepareQuery(g, sigs, q);
  match::PsiEvaluator evaluator(g, sigs);
  evaluator.BindQuery(q, ctx.query_sigs,
                      match::MakeHeuristicPlan(q, g, q.pivot()));
  const auto mode = state.range(1) == 0 ? match::PsiMode::kOptimistic
                                        : match::PsiMode::kPessimistic;
  match::PsiEvaluator::Options options;
  options.mode = mode;
  size_t i = 0;
  for (auto _ : state) {
    const graph::NodeId u = ctx.candidates[i % ctx.candidates.size()];
    benchmark::DoNotOptimize(evaluator.EvaluateNode(u, options));
    ++i;
  }
}
BENCHMARK(BM_PsiEvaluateNode)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({6, 0})
    ->Args({6, 1});

void BM_MakeHeuristicPlan(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  graph::QueryExtractor extractor(g);
  util::Rng rng(9);
  const graph::QueryGraph q = extractor.Extract(8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        match::MakeHeuristicPlan(q, g, q.pivot()).order.data());
  }
}
BENCHMARK(BM_MakeHeuristicPlan);

void BM_ExtractPivotCandidates(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  graph::QueryExtractor extractor(g);
  util::Rng rng(11);
  const graph::QueryGraph q = extractor.Extract(5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(match::ExtractPivotCandidates(g, q).data());
  }
}
BENCHMARK(BM_ExtractPivotCandidates);

}  // namespace

BENCHMARK_MAIN();
