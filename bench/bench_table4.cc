// Table 4 reproduction: the overhead of model training and prediction as a
// percentage of total SmartPSI query time, on Human / YouTube / Twitter.
//
// Paper result: large relative overhead on the small Human graph (queries
// themselves are cheap), negligible (1-5%) on the big social graphs.

#include <iostream>

#include "bench/bench_util.h"
#include "core/smart_psi.h"
#include "util/table_printer.h"

namespace {
using namespace psi;
}  // namespace

int main() {
  const int scale = bench::BenchScale();
  const size_t queries_per_size = 3 * scale;

  bench::PrintBanner(
      "Table 4: ML training + prediction overhead (% of total time)",
      "Abdelhamid et al., EDBT'19, Table 4",
      std::to_string(queries_per_size) + " queries per size.");

  const std::vector<graph::Dataset> datasets = {
      graph::Dataset::kHuman, graph::Dataset::kYouTube,
      graph::Dataset::kTwitter};
  const std::vector<size_t> sizes = {4, 5, 6, 7, 8};

  util::TablePrinter table({"Dataset", "4", "5", "6", "7", "8"});
  for (const graph::Dataset dataset : datasets) {
    // Larger stand-ins for the social graphs so candidate evaluation (not
    // training) dominates, as it does at the paper's full scale.
    const bool social = dataset != graph::Dataset::kHuman;
    const graph::Graph g = bench::MakeStandIn(dataset, social ? 3.0 : 1.0);
    core::SmartPsiConfig config;
    config.min_candidates_for_ml = 8;
    core::SmartPsiEngine engine(g, config);

    std::vector<std::string> row{graph::GetDatasetSpec(dataset).name};
    for (const size_t size : sizes) {
      double ml_seconds = 0.0;
      double total_seconds = 0.0;
      for (const auto& q :
           bench::MakeWorkload(g, size, queries_per_size)) {
        const auto result = engine.Evaluate(q);
        ml_seconds += result.train_seconds + result.predict_seconds;
        total_seconds += result.total_seconds;
      }
      char cell[32];
      std::snprintf(cell, sizeof(cell), "%.2f%%",
                    total_seconds <= 0.0
                        ? 0.0
                        : 100.0 * ml_seconds / total_seconds);
      row.push_back(cell);
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): the overhead fraction is largest "
               "on the small,\ncheap-to-query Human graph and shrinks as "
               "query evaluation dominates on\nthe larger graphs and larger "
               "query sizes.\n";
  return 0;
}
