// Figure 11 reproduction: prediction accuracy of the node-type classifier
// (Model α) across datasets and query sizes.
//
// Accuracy is measured exactly as the paper defines it: the model's
// prediction for each non-training candidate is compared against the true
// node type established by the (exact) evaluation itself. Paper result:
// > 90% on every dataset, stable across query sizes.

#include <iostream>

#include "bench/bench_util.h"
#include "core/smart_psi.h"
#include "util/table_printer.h"

namespace {
using namespace psi;
}  // namespace

int main() {
  const int scale = bench::BenchScale();
  const size_t queries_per_size = 3 * scale;

  bench::PrintBanner("Figure 11: Model α prediction accuracy",
                     "Abdelhamid et al., EDBT'19, Figure 11",
                     std::to_string(queries_per_size) +
                         " queries per size; accuracy aggregated over all "
                         "predicted candidates.");

  const std::vector<graph::Dataset> datasets = {
      graph::Dataset::kYeast, graph::Dataset::kCora, graph::Dataset::kHuman,
      graph::Dataset::kYouTube, graph::Dataset::kTwitter};
  const std::vector<size_t> sizes = {4, 6, 8, 10};

  util::TablePrinter table({"Dataset", "size 4", "size 6", "size 8",
                            "size 10", "overall"});
  for (const graph::Dataset dataset : datasets) {
    const graph::Graph g = bench::MakeStandIn(dataset);
    core::SmartPsiConfig config;
    config.min_candidates_for_ml = 8;  // keep the ML path on small graphs
    // At stand-in scale, 10% of a few hundred candidates is a tiny training
    // set; a larger fraction restores the paper's training regime.
    config.train_fraction = 0.25;
    config.forest_trees = 32;
    core::SmartPsiEngine engine(g, config);

    std::vector<std::string> row{graph::GetDatasetSpec(dataset).name};
    size_t total_predictions = 0;
    size_t total_correct = 0;
    for (const size_t size : sizes) {
      size_t predictions = 0;
      size_t correct = 0;
      for (const auto& q :
           bench::MakeWorkload(g, size, queries_per_size)) {
        const auto result = engine.Evaluate(q);
        predictions += result.alpha_predictions;
        correct += result.alpha_correct;
      }
      total_predictions += predictions;
      total_correct += correct;
      char cell[32];
      if (predictions == 0) {
        std::snprintf(cell, sizeof(cell), "n/a");
      } else {
        std::snprintf(cell, sizeof(cell), "%.1f%%",
                      100.0 * static_cast<double>(correct) /
                          static_cast<double>(predictions));
      }
      row.push_back(cell);
    }
    char overall[32];
    std::snprintf(overall, sizeof(overall), "%.1f%%",
                  total_predictions == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(total_correct) /
                            static_cast<double>(total_predictions));
    row.push_back(overall);
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): accuracy above ~90% on every "
               "dataset, with\nonly small variation across query sizes.\n";
  return 0;
}
