// Figure 7 reproduction: query performance of SmartPSI vs. CFL-Match,
// TurboIso and TurboIso+ on Yeast (a), Cora (b) and Human (c), query sizes
// 4-10. Cells are total wall time over the workload; runs exceeding the
// budget are censored (">limit", the paper's aborted 24 h bars).

#include <iostream>

#include "bench/bench_util.h"
#include "core/smart_psi.h"
#include "match/cfl_match.h"
#include "match/turbo_iso.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace psi;

/// Runs one competitor over the workload under a budget.
template <typename RunQuery>
std::string RunCell(const std::vector<graph::QueryGraph>& workload,
                    double budget, RunQuery run_query) {
  util::WallTimer timer;
  bool censored = false;
  const util::Deadline deadline = util::Deadline::After(budget);
  for (const auto& q : workload) {
    censored |= !run_query(q, deadline);
    if (deadline.Expired()) {
      censored = true;
      break;
    }
  }
  return bench::TimeCell(timer.Seconds(), censored, budget);
}

}  // namespace

int main() {
  const int scale = bench::BenchScale();
  const size_t queries_per_size = 5 * scale;
  const double budget = 2.0 * scale;

  bench::PrintBanner("Figure 7: SmartPSI vs subgraph-isomorphism systems",
                     "Abdelhamid et al., EDBT'19, Figure 7 (a,b,c)",
                     std::to_string(queries_per_size) +
                         " queries per size; per-cell budget " +
                         std::to_string(budget) + "s.");

  const std::vector<graph::Dataset> datasets = {
      graph::Dataset::kYeast, graph::Dataset::kCora, graph::Dataset::kHuman};
  const std::vector<size_t> sizes = {4, 5, 6, 7, 8, 9, 10};

  for (const graph::Dataset dataset : datasets) {
    const graph::Graph g = bench::MakeStandIn(dataset);
    core::SmartPsiEngine smart(g);
    match::TurboIsoEngine turbo(g);
    match::CflMatchEngine cfl(g);

    util::TablePrinter table(
        {"Size", "CFLMatch", "TurboIso", "TurboIso+", "SmartPSI"});
    for (const size_t size : sizes) {
      const auto workload = bench::MakeWorkload(g, size, queries_per_size);
      std::vector<std::string> row{std::to_string(size)};

      row.push_back(RunCell(workload, budget,
                            [&](const graph::QueryGraph& q,
                                util::Deadline deadline) {
                              match::MatchingEngine::Options options;
                              options.deadline = deadline;
                              return cfl.ProjectPivot(q, options).complete;
                            }));
      row.push_back(RunCell(workload, budget,
                            [&](const graph::QueryGraph& q,
                                util::Deadline deadline) {
                              match::MatchingEngine::Options options;
                              options.deadline = deadline;
                              return turbo.ProjectPivot(q, options).complete;
                            }));
      row.push_back(RunCell(workload, budget,
                            [&](const graph::QueryGraph& q,
                                util::Deadline deadline) {
                              match::MatchingEngine::Options options;
                              options.deadline = deadline;
                              return turbo.EvaluatePsi(q, options).complete;
                            }));
      row.push_back(RunCell(workload, budget,
                            [&](const graph::QueryGraph& q,
                                util::Deadline deadline) {
                              return smart.Evaluate(q, deadline).complete;
                            }));
      table.AddRow(row);
    }
    std::cout << "\n--- Figure 7: " << graph::GetDatasetSpec(dataset).name
              << " (" << g.num_nodes() << " nodes, " << g.num_edges()
              << " edges) ---\n";
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): enumeration-based systems win on "
               "the smallest\nqueries/datasets, blow up as size grows; "
               "TurboIso+ beats TurboIso;\nSmartPSI flattest and fastest on "
               "large queries and on Human.\n";
  return 0;
}
