// Table 1 reproduction: number of PSI results vs. number of isomorphic
// subgraphs, per query size, on Yeast / Cora / Human.
//
// For each dataset and query size the harness sums, over the workload
// queries, (a) the distinct pivot bindings (PSI) and (b) the total
// embedding count a subgraph-isomorphism solution must enumerate before
// projecting. Enumeration is capped per query (embedding cap + deadline)
// exactly like the paper's 24 h budget produced "NA" cells; censored sums
// print as ">=" lower bounds.

#include <iostream>

#include "bench/bench_util.h"
#include "core/smart_psi.h"
#include "match/engine.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace psi;  // bench binary: brevity over purity

struct Cell {
  double psi = 0;
  double iso = 0;
  bool iso_censored = false;
};

}  // namespace

int main() {
  const int scale = bench::BenchScale();
  const size_t queries_per_size = 10 * scale;
  const double per_query_limit = 0.5 * scale;
  const uint64_t embedding_cap = 2'000'000ULL * scale;

  bench::PrintBanner(
      "Table 1: PSI results vs. isomorphic subgraphs",
      "Abdelhamid et al., EDBT'19, Table 1",
      "Counts are sums over " + std::to_string(queries_per_size) +
          " queries per size; enumeration capped at " +
          std::to_string(embedding_cap) + " embeddings / " +
          std::to_string(per_query_limit) + "s per query.");

  const std::vector<graph::Dataset> datasets = {
      graph::Dataset::kYeast, graph::Dataset::kCora, graph::Dataset::kHuman};
  const std::vector<size_t> sizes = {4, 5, 6, 7, 8, 9, 10};

  for (const graph::Dataset dataset : datasets) {
    const graph::Graph g = bench::MakeStandIn(dataset);
    core::SmartPsiEngine engine(g);
    match::BasicEngine enumerator(g);

    util::TablePrinter table({"Query", "4", "5", "6", "7", "8", "9", "10"});
    std::vector<std::string> psi_row{"PSI"};
    std::vector<std::string> iso_row{"Subgraph Iso."};

    for (const size_t size : sizes) {
      Cell cell;
      const auto workload = bench::MakeWorkload(g, size, queries_per_size);
      for (const auto& q : workload) {
        const auto psi_result = engine.Evaluate(q);
        cell.psi += static_cast<double>(psi_result.valid_nodes.size());

        match::MatchingEngine::Options options;
        options.max_embeddings = embedding_cap;
        options.deadline = util::Deadline::After(per_query_limit);
        const auto iso_result = enumerator.Enumerate(q, nullptr, options);
        cell.iso += static_cast<double>(iso_result.embedding_count);
        cell.iso_censored |= !iso_result.complete;
      }
      psi_row.push_back(bench::CountCell(cell.psi, false));
      iso_row.push_back(bench::CountCell(cell.iso, cell.iso_censored));
    }
    table.AddRow(psi_row);
    table.AddRow(iso_row);
    std::cout << "\n--- " << graph::GetDatasetSpec(dataset).name
              << " (stand-in: " << g.num_nodes() << " nodes, "
              << g.num_edges() << " edges) ---\n";
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): iso counts grow exponentially "
               "with query size;\nPSI counts stay roughly flat or shrink.\n";
  return 0;
}
