// Service throughput/latency study (extension; not a paper table): offered
// load through the PsiService admission queue across worker counts, with a
// repeated-traffic mix so the shared prediction cache participates.
// Reports sustained throughput and queue-inclusive p50/p95/p99.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "service/service.h"
#include "service/workload.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace psi;

struct Point {
  double wall_seconds = 0.0;
  service::ServiceStats stats;
};

Point OfferSaturated(const graph::Graph& g,
                     const std::vector<service::QueryRequest>& requests,
                     size_t workers) {
  service::ServiceOptions options;
  options.num_workers = workers;
  options.max_queue_depth = 4 * requests.size();  // never shed in this bench
  service::PsiService psi_service(g, options);

  std::vector<std::future<service::QueryResponse>> futures;
  futures.reserve(requests.size());
  util::WallTimer wall;
  for (const service::QueryRequest& request : requests) {
    auto future = psi_service.Submit(request);
    if (future.has_value()) futures.push_back(std::move(*future));
  }
  for (auto& future : futures) future.get();

  Point point;
  point.wall_seconds = wall.Seconds();
  point.stats = psi_service.Stats();
  return point;
}

}  // namespace

int main() {
  const int scale = bench::BenchScale();
  const size_t distinct = 10 * scale;
  const size_t total = 4 * distinct;
  const size_t query_size = 5;

  bench::PrintBanner("Service throughput vs workers",
                     "(extension; not a paper table)",
                     std::to_string(total) + " requests over " +
                         std::to_string(distinct) +
                         " distinct queries on YouTube stand-in.");

  const graph::Graph g = bench::MakeStandIn(graph::Dataset::kYouTube);
  std::cout << "YouTube stand-in: " << g.num_nodes() << " nodes, "
            << g.num_edges() << " edges\n";

  service::WorkloadSpec spec;
  spec.count = distinct;
  spec.query_size = query_size;
  util::Rng rng(bench::kBenchSeed);
  std::vector<service::QueryRequest> requests =
      service::ExtractWorkload(g, spec, rng);
  if (requests.empty()) {
    std::cerr << "workload extraction failed\n";
    return 1;
  }
  for (size_t i = requests.size(); i < total; ++i) {
    service::QueryRequest copy = requests[i % requests.size()];
    copy.id = i + 1;
    requests.push_back(std::move(copy));
  }

  util::TablePrinter table({"Workers", "Wall", "Throughput", "p50", "p95",
                            "p99", "Cache hit rate", "Speedup vs 1"});
  double baseline_seconds = 0.0;
  for (const size_t workers : {1u, 2u, 4u, 8u}) {
    const Point point = OfferSaturated(g, requests, workers);
    if (workers == 1) baseline_seconds = point.wall_seconds;
    const auto& latency = point.stats.metrics.latency;
    char throughput[32], hit_rate[32], speedup[32];
    std::snprintf(throughput, sizeof(throughput), "%.1f q/s",
                  static_cast<double>(total) /
                      std::max(1e-9, point.wall_seconds));
    std::snprintf(hit_rate, sizeof(hit_rate), "%.0f%%",
                  100.0 * point.stats.cache.HitRate());
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  baseline_seconds / std::max(1e-9, point.wall_seconds));
    table.AddRow({std::to_string(workers),
                  bench::TimeCell(point.wall_seconds, false, 0), throughput,
                  bench::TimeCell(latency.p50, false, 0),
                  bench::TimeCell(latency.p95, false, 0),
                  bench::TimeCell(latency.p99, false, 0), hit_rate, speedup});
  }
  table.Print(std::cout);
  std::cout << "\nNotes: requests queue at t=0 (saturated offered load), so "
               "reported\nlatencies include queue wait and fall as workers "
               "drain the queue faster.\nScaling requires as many hardware "
               "threads as workers — on a single-core\nmachine all rows "
               "tie.\n";
  return 0;
}
