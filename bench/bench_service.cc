// Service throughput/latency study (extension; not a paper table): offered
// load through the PsiService admission queue across worker counts, with a
// repeated-traffic mix so the shared prediction cache participates.
// Reports sustained throughput and queue-inclusive p50/p95/p99, plus a
// swap-under-load phase (continuous catalog hot-swaps during a saturated
// run) quantifying what a snapshot swap costs the serving tail. Writes the
// machine-readable BENCH_service.json (override the path with
// PSI_BENCH_JSON).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "service/service.h"
#include "service/workload.h"
#include "shard/sharded_catalog.h"
#include "shard/sharded_service.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace psi;

struct Point {
  double wall_seconds = 0.0;
  service::ServiceStats stats;
};

Point OfferSaturated(const graph::Graph& g,
                     const std::vector<service::QueryRequest>& requests,
                     size_t workers) {
  service::ServiceOptions options;
  options.num_workers = workers;
  options.max_queue_depth = 4 * requests.size();  // never shed in this bench
  service::PsiService psi_service(g, options);

  std::vector<std::future<service::QueryResponse>> futures;
  futures.reserve(requests.size());
  util::WallTimer wall;
  for (const service::QueryRequest& request : requests) {
    auto future = psi_service.Submit(request);
    if (future.has_value()) futures.push_back(std::move(*future));
  }
  for (auto& future : futures) future.get();

  Point point;
  point.wall_seconds = wall.Seconds();
  point.stats = psi_service.Stats();
  return point;
}

struct SwapPoint {
  double wall_seconds = 0.0;
  size_t publishes = 0;
  double mean_publish_seconds = 0.0;
  service::ServiceStats stats;
};

/// Same saturated offering, but against a catalog-backed service with a
/// swapper thread republishing the served graph back-to-back for the whole
/// run — every request races a hot swap.
SwapPoint OfferSaturatedWithSwaps(
    const graph::Graph& g, const std::vector<service::QueryRequest>& requests,
    size_t workers) {
  service::GraphCatalog catalog;
  service::SnapshotBuildOptions build;
  auto seed = catalog.BuildAndPublish("bench", g.Clone(), build);
  if (!seed.ok()) {
    std::cerr << "seed publish failed: " << seed.status().ToString() << "\n";
    std::exit(1);
  }
  service::ServiceOptions options;
  options.num_workers = workers;
  options.max_queue_depth = 4 * requests.size();
  options.default_graph = "bench";
  service::PsiService psi_service(&catalog, options);

  std::atomic<bool> stop{false};
  size_t publishes = 0;
  double publish_seconds = 0.0;
  std::thread swapper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      util::WallTimer publish_timer;
      if (catalog.BuildAndPublish("bench", g.Clone(), build).ok()) {
        publish_seconds += publish_timer.Seconds();
        ++publishes;
      }
    }
  });

  std::vector<std::future<service::QueryResponse>> futures;
  futures.reserve(requests.size());
  util::WallTimer wall;
  for (const service::QueryRequest& request : requests) {
    auto future = psi_service.Submit(request);
    if (future.has_value()) futures.push_back(std::move(*future));
  }
  for (auto& future : futures) future.get();

  SwapPoint point;
  point.wall_seconds = wall.Seconds();
  stop.store(true, std::memory_order_release);
  swapper.join();
  point.publishes = publishes;
  point.mean_publish_seconds =
      publishes == 0 ? 0.0 : publish_seconds / static_cast<double>(publishes);
  point.stats = psi_service.Stats();
  return point;
}

/// Sharded counterpart of OfferSaturated: same offered load through the
/// K-shard router (partition + per-shard signature slices + fan-out).
Point ShardedOfferSaturated(const graph::Graph& g,
                            const std::vector<service::QueryRequest>& requests,
                            size_t workers, uint32_t shards) {
  shard::ShardedServiceOptions options;
  options.num_workers = workers;
  options.max_queue_depth = 4 * requests.size();
  options.build.partition.num_shards = shards;
  shard::ShardedPsiService psi_service(g, options);

  std::vector<std::future<service::QueryResponse>> futures;
  futures.reserve(requests.size());
  util::WallTimer wall;
  for (const service::QueryRequest& request : requests) {
    auto future = psi_service.Submit(request);
    if (future.has_value()) futures.push_back(std::move(*future));
  }
  for (auto& future : futures) future.get();

  Point point;
  point.wall_seconds = wall.Seconds();
  point.stats = psi_service.Stats();
  return point;
}

/// Sharded swap-under-load: the swapper republishes whole K-shard
/// generations (partition + K signature-slice snapshots per publish)
/// back-to-back while the offered load saturates the router.
SwapPoint ShardedOfferSaturatedWithSwaps(
    const graph::Graph& g, const std::vector<service::QueryRequest>& requests,
    size_t workers, uint32_t shards) {
  shard::ShardedCatalog catalog;
  shard::ShardedCatalog::BuildOptions build;
  build.partition.num_shards = shards;
  auto seed = catalog.BuildAndPublish("bench", g.Clone(), build);
  if (!seed.ok()) {
    std::cerr << "sharded seed publish failed: " << seed.status().ToString()
              << "\n";
    std::exit(1);
  }
  shard::ShardedServiceOptions options;
  options.num_workers = workers;
  options.max_queue_depth = 4 * requests.size();
  options.default_graph = "bench";
  options.build.partition.num_shards = shards;
  shard::ShardedPsiService psi_service(&catalog, options);

  std::atomic<bool> stop{false};
  size_t publishes = 0;
  double publish_seconds = 0.0;
  std::thread swapper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      util::WallTimer publish_timer;
      if (catalog.BuildAndPublish("bench", g.Clone(), build).ok()) {
        publish_seconds += publish_timer.Seconds();
        ++publishes;
      }
    }
  });

  std::vector<std::future<service::QueryResponse>> futures;
  futures.reserve(requests.size());
  util::WallTimer wall;
  for (const service::QueryRequest& request : requests) {
    auto future = psi_service.Submit(request);
    if (future.has_value()) futures.push_back(std::move(*future));
  }
  for (auto& future : futures) future.get();

  SwapPoint point;
  point.wall_seconds = wall.Seconds();
  stop.store(true, std::memory_order_release);
  swapper.join();
  point.publishes = publishes;
  point.mean_publish_seconds =
      publishes == 0 ? 0.0 : publish_seconds / static_cast<double>(publishes);
  point.stats = psi_service.Stats();
  return point;
}

uint64_t TotalForwards(const service::ServiceStats& stats) {
  uint64_t total = 0;
  for (const auto& sh : stats.metrics.shards) total += sh.cross_shard_forwards;
  return total;
}

}  // namespace

int main() {
  const int scale = bench::BenchScale();
  const size_t distinct = 10 * scale;
  const size_t total = 4 * distinct;
  const size_t query_size = 5;

  bench::PrintBanner("Service throughput vs workers",
                     "(extension; not a paper table)",
                     std::to_string(total) + " requests over " +
                         std::to_string(distinct) +
                         " distinct queries on YouTube stand-in.");

  const graph::Graph g = bench::MakeStandIn(graph::Dataset::kYouTube);
  std::cout << "YouTube stand-in: " << g.num_nodes() << " nodes, "
            << g.num_edges() << " edges\n";

  service::WorkloadSpec spec;
  spec.count = distinct;
  spec.query_size = query_size;
  util::Rng rng(bench::kBenchSeed);
  std::vector<service::QueryRequest> requests =
      service::ExtractWorkload(g, spec, rng);
  if (requests.empty()) {
    std::cerr << "workload extraction failed\n";
    return 1;
  }
  for (size_t i = requests.size(); i < total; ++i) {
    service::QueryRequest copy = requests[i % requests.size()];
    copy.id = i + 1;
    requests.push_back(std::move(copy));
  }

  util::TablePrinter table({"Workers", "Wall", "Throughput", "p50", "p95",
                            "p99", "Cache hit rate", "Speedup vs 1"});
  double baseline_seconds = 0.0;
  std::vector<std::pair<size_t, Point>> sweep;
  for (const size_t workers : {1u, 2u, 4u, 8u}) {
    const Point point = OfferSaturated(g, requests, workers);
    if (workers == 1) baseline_seconds = point.wall_seconds;
    const auto& latency = point.stats.metrics.latency;
    char throughput[32], hit_rate[32], speedup[32];
    std::snprintf(throughput, sizeof(throughput), "%.1f q/s",
                  static_cast<double>(total) /
                      std::max(1e-9, point.wall_seconds));
    std::snprintf(hit_rate, sizeof(hit_rate), "%.0f%%",
                  100.0 * point.stats.cache.HitRate());
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  baseline_seconds / std::max(1e-9, point.wall_seconds));
    table.AddRow({std::to_string(workers),
                  bench::TimeCell(point.wall_seconds, false, 0), throughput,
                  bench::TimeCell(latency.p50, false, 0),
                  bench::TimeCell(latency.p95, false, 0),
                  bench::TimeCell(latency.p99, false, 0), hit_rate, speedup});
    sweep.emplace_back(workers, point);
  }
  table.Print(std::cout);
  std::cout << "\nNotes: requests queue at t=0 (saturated offered load), so "
               "reported\nlatencies include queue wait and fall as workers "
               "drain the queue faster.\nScaling requires as many hardware "
               "threads as workers — on a single-core\nmachine all rows "
               "tie.\n";

  // --- Swap under load ------------------------------------------------------
  const size_t swap_workers = 8;
  const SwapPoint swapped = OfferSaturatedWithSwaps(g, requests, swap_workers);
  const Point& steady = sweep.back().second;  // 8-worker swap-free baseline
  std::cout << "\nSwap under load (" << swap_workers << " workers, "
            << swapped.publishes << " hot swaps during the run, mean publish "
            << swapped.mean_publish_seconds * 1e3 << " ms):\n";
  util::TablePrinter swap_table(
      {"Run", "Wall", "p50", "p95", "p99", "epoch_drops"});
  auto add_swap_row = [&](const char* name, double wall,
                          const service::ServiceStats& stats) {
    swap_table.AddRow({name, bench::TimeCell(wall, false, 0),
                       bench::TimeCell(stats.metrics.latency.p50, false, 0),
                       bench::TimeCell(stats.metrics.latency.p95, false, 0),
                       bench::TimeCell(stats.metrics.latency.p99, false, 0),
                       std::to_string(stats.cache.epoch_drops)});
  };
  add_swap_row("steady", steady.wall_seconds, steady.stats);
  add_swap_row("swap storm", swapped.wall_seconds, swapped.stats);
  swap_table.Print(std::cout);
  if (swapped.stats.cache.epoch_drops != 0) {
    std::cerr << "BENCH CHECK FAILED: cross-snapshot cache hits detected "
                 "(epoch_drops="
              << swapped.stats.cache.epoch_drops << ")\n";
    return 1;
  }

  // --- Sharded serving ------------------------------------------------------
  // 1-shard (router overhead alone) vs 4-shard partitioned serving, each
  // steady and under a generation swap storm. Per-shard evaluation does
  // strictly more verification work than the single engine (cross-shard
  // continuations), so this quantifies what the partitioned layout costs —
  // or saves — end to end.
  const size_t shard_workers = 8;
  struct ShardRun {
    uint32_t shards = 1;
    Point steady;
    SwapPoint storm;
  };
  std::vector<ShardRun> shard_runs;
  for (const uint32_t k : {1u, 4u}) {
    ShardRun run;
    run.shards = k;
    run.steady = ShardedOfferSaturated(g, requests, shard_workers, k);
    run.storm = ShardedOfferSaturatedWithSwaps(g, requests, shard_workers, k);
    shard_runs.push_back(std::move(run));
  }
  std::cout << "\nSharded serving (" << shard_workers
            << " workers, router fan-out, generation swap storm):\n";
  util::TablePrinter shard_table({"Shards", "Run", "Wall", "Throughput",
                                  "p50", "p95", "p99", "Forwards"});
  auto add_shard_row = [&](uint32_t shards, const char* name, double wall,
                           const service::ServiceStats& stats) {
    char throughput[32];
    std::snprintf(throughput, sizeof(throughput), "%.1f q/s",
                  static_cast<double>(total) / std::max(1e-9, wall));
    shard_table.AddRow({std::to_string(shards), name,
                        bench::TimeCell(wall, false, 0), throughput,
                        bench::TimeCell(stats.metrics.latency.p50, false, 0),
                        bench::TimeCell(stats.metrics.latency.p95, false, 0),
                        bench::TimeCell(stats.metrics.latency.p99, false, 0),
                        std::to_string(TotalForwards(stats))});
  };
  for (const ShardRun& run : shard_runs) {
    add_shard_row(run.shards, "steady", run.steady.wall_seconds,
                  run.steady.stats);
    add_shard_row(run.shards, "swap storm", run.storm.wall_seconds,
                  run.storm.stats);
  }
  shard_table.Print(std::cout);
  std::cout << "4-shard vs 1-shard steady throughput: "
            << shard_runs[0].steady.wall_seconds /
                   std::max(1e-9, shard_runs[1].steady.wall_seconds)
            << "x\n";

  const char* shard_env = std::getenv("PSI_BENCH_SHARD_JSON");
  const std::string shard_path =
      shard_env != nullptr ? shard_env : "BENCH_shard.json";
  {
    std::ofstream shard_out(shard_path);
    shard_out << "{\n  \"bench\": \"shard\",\n"
              << "  \"graph\": \"youtube_standin\",\n"
              << "  \"num_nodes\": " << g.num_nodes() << ",\n"
              << "  \"num_edges\": " << g.num_edges() << ",\n"
              << "  \"requests\": " << total << ",\n"
              << "  \"workers\": " << shard_workers << ",\n"
              << "  \"runs\": [";
    bool first_run = true;
    auto emit_phase = [&](const char* name, double wall,
                          const service::ServiceStats& stats) {
      const auto& l = stats.metrics.latency;
      shard_out << "\n      \"" << name << "\": {\"wall_s\": " << wall
                << ", \"throughput_qps\": "
                << static_cast<double>(total) / std::max(1e-9, wall)
                << ", \"p50_s\": " << l.p50 << ", \"p95_s\": " << l.p95
                << ", \"p99_s\": " << l.p99
                << ", \"cross_shard_forwards\": " << TotalForwards(stats)
                << "}";
    };
    for (const ShardRun& run : shard_runs) {
      shard_out << (first_run ? "" : ",") << "\n    {\"shards\": "
                << run.shards << ",";
      emit_phase("steady", run.steady.wall_seconds, run.steady.stats);
      shard_out << ",";
      emit_phase("swap_storm", run.storm.wall_seconds, run.storm.stats);
      shard_out << ",\n      \"swap_publishes\": " << run.storm.publishes
                << ",\n      \"mean_publish_s\": "
                << run.storm.mean_publish_seconds << "\n    }";
      first_run = false;
    }
    shard_out << "\n  ]\n}\n";
  }
  std::cout << "wrote " << shard_path << "\n";

  // --- JSON artifact --------------------------------------------------------
  const char* env = std::getenv("PSI_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_service.json";
  std::ofstream out(path);
  out << "{\n  \"bench\": \"service\",\n"
      << "  \"graph\": \"youtube_standin\",\n"
      << "  \"num_nodes\": " << g.num_nodes() << ",\n"
      << "  \"num_edges\": " << g.num_edges() << ",\n"
      << "  \"requests\": " << total << ",\n"
      << "  \"distinct_queries\": " << distinct << ",\n"
      << "  \"workers_sweep\": [";
  bool first = true;
  for (const auto& [workers, point] : sweep) {
    const auto& l = point.stats.metrics.latency;
    out << (first ? "" : ",") << "\n    {\"workers\": " << workers
        << ", \"wall_s\": " << point.wall_seconds << ", \"throughput_qps\": "
        << static_cast<double>(total) / std::max(1e-9, point.wall_seconds)
        << ", \"p50_s\": " << l.p50 << ", \"p95_s\": " << l.p95
        << ", \"p99_s\": " << l.p99
        << ", \"cache_hit_rate\": " << point.stats.cache.HitRate() << "}";
    first = false;
  }
  const auto& sl = swapped.stats.metrics.latency;
  out << "\n  ],\n  \"swap_under_load\": {\n"
      << "    \"workers\": " << swap_workers << ",\n"
      << "    \"publishes\": " << swapped.publishes << ",\n"
      << "    \"mean_publish_s\": " << swapped.mean_publish_seconds << ",\n"
      << "    \"wall_s\": " << swapped.wall_seconds << ",\n"
      << "    \"throughput_qps\": "
      << static_cast<double>(total) / std::max(1e-9, swapped.wall_seconds)
      << ",\n"
      << "    \"p50_s\": " << sl.p50 << ",\n"
      << "    \"p95_s\": " << sl.p95 << ",\n"
      << "    \"p99_s\": " << sl.p99 << ",\n"
      << "    \"epoch_drops\": " << swapped.stats.cache.epoch_drops << ",\n"
      << "    \"snapshot_swaps\": " << swapped.stats.metrics.snapshot_swaps
      << "\n  }\n}\n";
  std::cout << "\nwrote " << path << "\n";
  return 0;
}
