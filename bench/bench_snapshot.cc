// Snapshot + compact-signature study (extension; DESIGN.md §16): how much
// a prebuilt .psnap buys over rebuilding at load time, what the 8-bit
// compact codes cost and save, and what the quantized prescreen does to
// bulk filter throughput. Prints paper-style rows and writes a
// machine-readable BENCH_snapshot.json (override the path with
// PSI_BENCH_SNAPSHOT_JSON; the scratch .psnap path with PSI_BENCH_PSNAP).
//
// Three phases:
//   1. cold start — what `!load graph.lg` pays (text parse + signature
//      build + hash prewarm + compact codes) vs what `!load graph.psnap`
//      pays (mmap + validation), plus the graph-already-resident rebuild
//      for reference;
//   2. memory — heap bytes the signature state owns when built in-process
//      vs served zero-copy out of the mapping, plus VmRSS deltas;
//   3. filter throughput — FilterCandidates with the compact prescreen
//      attached vs the float-only path, same kept sets required, in a
//      selective regime (most candidates rejected, the prescreen's case)
//      and a permissive one (most admitted, its worst case).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "graph/graph_io.h"
#include "service/snapshot_io.h"
#include "signature/builders.h"
#include "signature/kernels.h"
#include "signature/sparse_requirement.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {
using namespace psi;

/// Resident set size in KiB from /proc/self/status, 0 if unreadable.
size_t VmRssKb() {
  std::ifstream status("/proc/self/status");
  std::string key;
  while (status >> key) {
    if (key == "VmRSS:") {
      size_t kb = 0;
      status >> kb;
      return kb;
    }
    status.ignore(1 << 20, '\n');
  }
  return 0;
}

/// One full in-memory signature build as the catalog performs it on
/// `!load`: floats, memoized row hashes, compact codes.
signature::SignatureMatrix RebuildSignatures(const graph::Graph& g,
                                             uint32_t depth) {
  signature::SignatureMatrix sigs = signature::BuildSignatures(
      g, signature::Method::kMatrix, depth, g.num_labels());
  for (size_t i = 0; i < sigs.num_rows(); ++i) sigs.RowHash(i);
  sigs.BuildCompact();
  return sigs;
}

}  // namespace

int main() {
  const int scale = bench::BenchScale();
  const uint32_t depth = 2;
  const size_t num_queries = 40 * static_cast<size_t>(scale);
  const size_t query_size = 6;

  bench::PrintBanner(
      "Snapshots: .psnap mmap load vs rebuild, compact prescreen",
      "(extension; not a paper table)",
      "YouTube stand-in, depth-" + std::to_string(depth) +
          " matrix signatures, " + std::to_string(num_queries) +
          " filter requirements.");

  const graph::Graph g =
      bench::MakeStandIn(graph::Dataset::kYouTube, 1.0 * scale);
  std::cout << "YouTube stand-in: " << g.num_nodes() << " nodes, "
            << g.num_edges() << " edges, " << g.num_labels() << " labels\n\n";

  const char* psnap_env = std::getenv("PSI_BENCH_PSNAP");
  const std::string psnap_path =
      psnap_env != nullptr ? psnap_env : "bench_snapshot.psnap";
  const std::string lg_path = psnap_path + ".lg";

  // --- Phase 1+2: rebuild vs save/load, heap + RSS ------------------------
  const size_t rss_before_build = VmRssKb();
  double rebuild_seconds = 0.0;
  double save_seconds = 0.0;
  size_t rss_after_build = 0;
  uint64_t file_bytes = 0;
  {
    util::WallTimer rebuild_timer;
    signature::SignatureMatrix sigs = RebuildSignatures(g, depth);
    rebuild_seconds = rebuild_timer.Seconds();
    rss_after_build = VmRssKb();

    util::WallTimer save_timer;
    const auto status = service::SaveSnapshotFile(g, sigs, psnap_path);
    save_seconds = save_timer.Seconds();
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
    std::ifstream file(psnap_path, std::ios::binary | std::ios::ate);
    file_bytes = static_cast<uint64_t>(file.tellg());

    std::cout << "rebuild (build+prewarm+compact): " << rebuild_seconds
              << " s\n"
              << "save " << psnap_path << ": " << save_seconds << " s, "
              << file_bytes << " bytes\n";
  }

  // Cold start from .lg: the admin `!load NAME graph.lg` path — parse the
  // text format, then the same in-memory build.
  if (const auto status = graph::SaveLgFile(g, lg_path); !status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  util::WallTimer lg_timer;
  double cold_lg_seconds = 0.0;
  {
    auto reloaded = graph::LoadLgFile(lg_path);
    if (!reloaded.ok()) {
      std::cerr << reloaded.status().ToString() << "\n";
      return 1;
    }
    const signature::SignatureMatrix cold_sigs =
        RebuildSignatures(reloaded.value(), depth);
    cold_lg_seconds = lg_timer.Seconds();
  }

  const size_t rss_before_load = VmRssKb();
  util::WallTimer load_timer;
  auto loaded = service::LoadSnapshotFile(psnap_path);
  const double load_seconds = load_timer.Seconds();
  if (!loaded.ok()) {
    std::cerr << loaded.status().ToString() << "\n";
    return 1;
  }
  const size_t rss_after_load = VmRssKb();

  const size_t n = g.num_nodes();
  const size_t labels = g.num_labels();
  // Heap bytes the signature state owns in each serving mode (the mapping
  // behind the zero-copy mode is clean file-backed page cache — evictable
  // and shared across serving processes, unlike the heap).
  const uint64_t built_heap_bytes =
      static_cast<uint64_t>(n) * labels * sizeof(float)  // floats
      + static_cast<uint64_t>(n) * labels                // compact codes
      + static_cast<uint64_t>(n) * sizeof(uint64_t);     // row hashes
  const uint64_t mapped_heap_bytes =
      static_cast<uint64_t>(n) * sizeof(uint64_t);  // adopted row hashes

  util::TablePrinter cold_table(
      {"cold-start path", "time", "sig heap bytes", "RSS delta KiB"});
  cold_table.AddRow({"parse .lg + rebuild",
                     bench::TimeCell(cold_lg_seconds, false, 0),
                     std::to_string(built_heap_bytes), "-"});
  cold_table.AddRow({"rebuild (graph resident)",
                     bench::TimeCell(rebuild_seconds, false, 0),
                     std::to_string(built_heap_bytes),
                     std::to_string(rss_after_build > rss_before_build
                                        ? rss_after_build - rss_before_build
                                        : 0)});
  cold_table.AddRow({"mmap .psnap",
                     bench::TimeCell(load_seconds, false, 0),
                     std::to_string(mapped_heap_bytes),
                     std::to_string(rss_after_load > rss_before_load
                                        ? rss_after_load - rss_before_load
                                        : 0)});
  cold_table.Print(std::cout);
  const double load_speedup =
      load_seconds > 0.0 ? cold_lg_seconds / load_seconds : 0.0;
  const double rebuild_speedup =
      load_seconds > 0.0 ? rebuild_seconds / load_seconds : 0.0;
  const double heap_reduction =
      mapped_heap_bytes > 0
          ? static_cast<double>(built_heap_bytes) /
                static_cast<double>(mapped_heap_bytes)
          : 0.0;
  std::printf(
      "cold load speedup: %.1fx vs .lg, %.1fx vs resident rebuild; "
      "signature heap reduction: %.1fx\n\n",
      load_speedup, rebuild_speedup, heap_reduction);

  // --- Phase 3: filter throughput, compact prescreen vs float-only --------
  // Const view: the mutable row() accessors require owned storage, and a
  // loaded matrix serves its floats straight out of the mapping.
  const signature::SignatureMatrix& sigs = loaded.value().sigs;
  signature::SignatureMatrix float_only = sigs;  // copy drops compact codes

  // Permissive regime: extracted query pivots reach few labels with small
  // weights, so most data rows satisfy them — the prescreen rejects little
  // and its byte sweep is pure overhead. Selective regime: a data node's
  // own row as the requirement ("at least as label-rich as v") rejects
  // almost everything, so the prescreen spares almost every float-row
  // touch. Real workloads sit between the two.
  std::vector<signature::SparseRequirement> permissive(num_queries);
  const auto workload = bench::MakeWorkload(g, query_size, num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    const graph::QueryGraph& q = workload[i % workload.size()];
    const auto qsigs = signature::BuildSignatures(
        q, signature::Method::kMatrix, depth, labels);
    permissive[i].Assign(qsigs.row(q.pivot()));
  }
  std::vector<signature::SparseRequirement> selective(num_queries);
  util::Rng pick(bench::kBenchSeed ^ 0x5e1ec71feULL);
  for (size_t i = 0; i < num_queries; ++i) {
    selective[i].Assign(sigs.row(pick.NextBounded(n)));
  }
  std::vector<graph::NodeId> all_nodes(n);
  for (size_t v = 0; v < n; ++v) all_nodes[v] = static_cast<graph::NodeId>(v);

  auto run_filter = [&](const signature::SignatureMatrix& m,
                        const std::vector<signature::SparseRequirement>& reqs,
                        uint64_t* kept) {
    std::vector<graph::NodeId> candidates;
    util::WallTimer timer;
    *kept = 0;
    for (const auto& req : reqs) {
      candidates = all_nodes;
      signature::FilterCandidates(m, req, candidates);
      *kept += candidates.size();
    }
    return timer.Seconds();
  };
  const double rows_swept =
      static_cast<double>(n) * static_cast<double>(num_queries);
  util::TablePrinter filter_table(
      {"regime", "float only", "compact prescreen", "speedup", "kept"});
  struct FilterPoint {
    const char* regime;
    double float_s = 0.0;
    double compact_s = 0.0;
    uint64_t kept = 0;
  };
  std::vector<FilterPoint> filter_points;
  for (const auto& [regime, reqs] :
       {std::pair<const char*,
                  const std::vector<signature::SparseRequirement>&>(
            "selective", selective),
        {"permissive", permissive}}) {
    uint64_t kept_float = 0, kept_compact = 0;
    FilterPoint point;
    point.regime = regime;
    point.float_s = run_filter(float_only, reqs, &kept_float);
    point.compact_s = run_filter(sigs, reqs, &kept_compact);
    point.kept = kept_float;
    if (kept_float != kept_compact) {
      std::cerr << "BUG: compact prescreen changed the kept set ("
                << kept_float << " vs " << kept_compact << ")\n";
      return 1;
    }
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  point.compact_s > 0.0 ? point.float_s / point.compact_s
                                        : 0.0);
    filter_table.AddRow({regime, bench::TimeCell(point.float_s, false, 0),
                         bench::TimeCell(point.compact_s, false, 0), speedup,
                         std::to_string(point.kept)});
    filter_points.push_back(point);
  }
  filter_table.Print(std::cout);
  std::printf("%.0f Mrows swept per path per regime; kept sets identical\n",
              rows_swept / 1e6);

  // --- JSON artifact ------------------------------------------------------
  const char* env = std::getenv("PSI_BENCH_SNAPSHOT_JSON");
  const std::string json_path = env != nullptr ? env : "BENCH_snapshot.json";
  {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"snapshot\",\n"
        << "  \"graph\": \"youtube_standin\",\n"
        << "  \"num_nodes\": " << n << ",\n"
        << "  \"num_edges\": " << g.num_edges() << ",\n"
        << "  \"num_labels\": " << labels << ",\n"
        << "  \"depth\": " << depth << ",\n"
        << "  \"cold_lg_s\": " << cold_lg_seconds << ",\n"
        << "  \"rebuild_s\": " << rebuild_seconds << ",\n"
        << "  \"save_s\": " << save_seconds << ",\n"
        << "  \"load_s\": " << load_seconds << ",\n"
        << "  \"load_speedup_vs_lg\": " << load_speedup << ",\n"
        << "  \"load_speedup_vs_rebuild\": " << rebuild_speedup << ",\n"
        << "  \"psnap_bytes\": " << file_bytes << ",\n"
        << "  \"built_sig_heap_bytes\": " << built_heap_bytes << ",\n"
        << "  \"mapped_sig_heap_bytes\": " << mapped_heap_bytes << ",\n"
        << "  \"sig_heap_reduction\": " << heap_reduction << ",\n"
        << "  \"filter_requirements\": " << num_queries << ",\n"
        << "  \"filter\": [";
    bool first = true;
    for (const FilterPoint& point : filter_points) {
      out << (first ? "" : ",") << "\n    {\"regime\": \"" << point.regime
          << "\", \"float_s\": " << point.float_s
          << ", \"compact_s\": " << point.compact_s << ", \"speedup\": "
          << (point.compact_s > 0.0 ? point.float_s / point.compact_s : 0.0)
          << ", \"kept\": " << point.kept << "}";
      first = false;
    }
    out << "\n  ]\n}\n";
  }
  std::cout << "\nWrote " << json_path << "\n";
  std::remove(psnap_path.c_str());
  std::remove(lg_path.c_str());
  return 0;
}
