// Ablation study over SmartPSI's design choices (DESIGN.md §5): starting
// from the full engine, knock out one feature at a time and measure total
// query time plus the recovery/cache counters, on the Twitter stand-in.
//
// Not a paper table — this quantifies which of the paper's mechanisms
// (Model α, Model β, prediction cache, preemptive recovery,
// super-optimistic pass, signature method/depth/decay) carries the win.

#include <functional>
#include <iostream>

#include "bench/bench_util.h"
#include "core/smart_psi.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace psi;

struct Variant {
  std::string name;
  std::function<void(core::SmartPsiConfig&)> tweak;
};

}  // namespace

int main() {
  const int scale = bench::BenchScale();
  const size_t queries_per_size = 2 * scale;
  const double budget = 5.0 * scale;

  bench::PrintBanner("Ablation: SmartPSI design choices",
                     "(extension; not a paper table)",
                     std::to_string(queries_per_size) +
                         " queries per size on Twitter (4x), budget " +
                         std::to_string(budget) + "s per variant+size.");

  const graph::Graph g = bench::MakeStandIn(graph::Dataset::kTwitter, 4.0);
  std::cout << "Twitter stand-in: " << g.num_nodes() << " nodes, "
            << g.num_edges() << " edges\n";

  const std::vector<Variant> variants = {
      {"full", [](core::SmartPsiConfig&) {}},
      {"no plan model (β)",
       [](core::SmartPsiConfig& c) { c.enable_plan_model = false; }},
      {"no cache",
       [](core::SmartPsiConfig& c) { c.enable_cache = false; }},
      {"no preemption",
       [](core::SmartPsiConfig& c) { c.enable_preemption = false; }},
      {"no super-optimist",
       [](core::SmartPsiConfig& c) { c.super_optimistic_limit = SIZE_MAX; }},
      {"exploration sigs",
       [](core::SmartPsiConfig& c) {
         c.signature_method = signature::Method::kExploration;
       }},
      {"depth D=1",
       [](core::SmartPsiConfig& c) { c.signature_depth = 1; }},
      {"depth D=3",
       [](core::SmartPsiConfig& c) { c.signature_depth = 3; }},
      {"decay 0.25",
       [](core::SmartPsiConfig& c) { c.signature_decay = 0.25f; }},
      {"decay 0.75",
       [](core::SmartPsiConfig& c) { c.signature_decay = 0.75f; }},
  };

  util::TablePrinter table({"Variant", "size 5", "size 7", "recoveries",
                            "fallbacks", "cache hits", "sig build"});
  for (const Variant& variant : variants) {
    core::SmartPsiConfig config;
    config.min_candidates_for_ml = 8;
    variant.tweak(config);
    core::SmartPsiEngine engine(g, config);

    std::vector<std::string> row{variant.name};
    size_t recoveries = 0;
    size_t fallbacks = 0;
    size_t cache_hits = 0;
    for (const size_t size : {5u, 7u}) {
      util::WallTimer timer;
      bool censored = false;
      const util::Deadline deadline = util::Deadline::After(budget);
      for (const auto& q : bench::MakeWorkload(g, size, queries_per_size)) {
        const auto result = engine.Evaluate(q, deadline);
        censored |= !result.complete;
        recoveries += result.method_recoveries;
        fallbacks += result.plan_fallbacks;
        cache_hits += result.cache_hits;
        if (deadline.Expired()) break;
      }
      row.push_back(bench::TimeCell(timer.Seconds(), censored, budget));
    }
    row.push_back(std::to_string(recoveries));
    row.push_back(std::to_string(fallbacks));
    row.push_back(std::to_string(cache_hits));
    row.push_back(
        bench::TimeCell(engine.signature_build_seconds(), false, 0));
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nReading guide: 'full' should be at or near the best time; "
               "each knockout\nshows the cost of losing that mechanism "
               "(or, for depth/decay, the\nsensitivity to the signature "
               "resolution).\n";
  return 0;
}
