// FSM support-counting through the serving layer (DESIGN.md §17): the
// Figure 12 ScaleMine-vs-SmartPSI comparison with a third competitor —
// support counted through PsiService::SubmitBatch, one batch of per-pivot
// pessimistic probes per candidate pattern against one pinned snapshot.
//
// Prints paper-style rows and writes machine-readable BENCH_fsm.json
// (override the path with PSI_BENCH_FSM_JSON). The nightly CI job uploads
// the JSON; the headline number is served-PSI's speedup over enumeration.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "fsm/miner.h"
#include "service/service.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace psi;

struct Row {
  std::string dataset;
  size_t workers = 0;
  double enum_s = 0.0;
  double psi_s = 0.0;
  double served_s = 0.0;
  size_t patterns = 0;
  bool agree = false;
  uint64_t batches = 0;
  uint64_t context_hits = 0;
};

}  // namespace

int main() {
  const int scale = bench::BenchScale();
  const double budget = 60.0 * scale;  // per mining run

  bench::PrintBanner(
      "FSM support counting: enumeration vs PSI vs served batches",
      "Abdelhamid et al., EDBT'19, Figure 12 regime + DESIGN.md §17",
      "served = one SubmitBatch of per-pivot pessimistic probes per\n"
      "candidate pattern (exact MNI, no early stop), service workers = the\n"
      "same worker count the in-process methods get.");

  struct Case {
    graph::Dataset dataset;
    uint64_t min_support;
    size_t max_edges;
  };
  const std::vector<Case> cases = {
      {graph::Dataset::kTwitter, 1200, 3},
      {graph::Dataset::kWeibo, 40, 4},
  };
  const std::vector<size_t> worker_counts = {1, 2, 4};

  std::vector<Row> rows;
  for (const Case& c : cases) {
    const graph::Graph g = bench::MakeStandIn(c.dataset);
    const std::string name = graph::GetDatasetSpec(c.dataset).name;
    std::cout << "\n--- " << name << " (" << g.num_nodes() << " nodes, "
              << g.num_edges() << " edges, support>=" << c.min_support
              << ", max " << c.max_edges << " edges) ---\n";

    // The ScaleMine baseline typically censors at the budget in this regime
    // (the paper's ">24 hrs" analogue), so one run at the top worker count
    // stands in for every row — a censored time is a floor either way.
    fsm::FsmConfig enum_config;
    enum_config.min_support = c.min_support;
    enum_config.max_edges = c.max_edges;
    enum_config.num_threads = worker_counts.back();
    enum_config.method = fsm::SupportMethod::kEnumeration;
    const auto by_enum =
        fsm::FsmMiner(g, enum_config).Mine(util::Deadline::After(budget));

    util::TablePrinter table({"Workers", "Enumeration", "In-proc PSI",
                              "Served batches", "Speedup vs enum",
                              "#patterns", "Ctx hits"});
    for (const size_t workers : worker_counts) {
      fsm::FsmConfig base;
      base.min_support = c.min_support;
      base.max_edges = c.max_edges;
      base.num_threads = workers;

      fsm::FsmConfig psi_config = base;
      psi_config.method = fsm::SupportMethod::kPsi;
      const auto by_psi =
          fsm::FsmMiner(g, psi_config).Mine(util::Deadline::After(budget));

      // Served: the service owns the snapshot + signatures; its workers are
      // the only support-evaluation parallelism.
      service::ServiceOptions service_options;
      service_options.num_workers = workers;
      fsm::FsmConfig served_config = base;
      uint64_t batches = 0;
      uint64_t context_hits = 0;
      util::WallTimer served_timer;
      service::PsiService service(g, service_options);
      served_config.service = &service;
      const auto by_served =
          fsm::FsmMiner(g, served_config).Mine(util::Deadline::After(budget));
      const double served_s = served_timer.Seconds();  // includes sig build
      batches = service.Stats().metrics.batch_submitted;
      context_hits = service.Stats().metrics.batch_context_hits;

      // Complete runs must agree on the frequent set (supports may differ:
      // enumeration/PSI report capped lower bounds, served exact MNI). A
      // censored run's set is truncated, so it is excluded from the check.
      bool agree = true;
      if (by_psi.complete && by_served.complete) {
        agree = by_psi.frequent.size() == by_served.frequent.size();
      }
      if (by_enum.complete && by_served.complete) {
        agree = agree && by_enum.frequent.size() == by_served.frequent.size();
      }

      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.1fx",
                    by_enum.seconds / std::max(1e-9, served_s));
      table.AddRow({std::to_string(workers),
                    bench::TimeCell(by_enum.seconds, !by_enum.complete,
                                    budget),
                    bench::TimeCell(by_psi.seconds, !by_psi.complete, budget),
                    bench::TimeCell(served_s, !by_served.complete, budget),
                    speedup,
                    std::to_string(by_served.frequent.size()) +
                        (agree ? "" : " MISMATCH"),
                    std::to_string(context_hits)});

      Row row;
      row.dataset = name;
      row.workers = workers;
      row.enum_s = by_enum.seconds;
      row.psi_s = by_psi.seconds;
      row.served_s = served_s;
      row.patterns = by_served.frequent.size();
      row.agree = agree;
      row.batches = batches;
      row.context_hits = context_hits;
      rows.push_back(row);
    }
    table.Print(std::cout);
  }

  // Headline: at the top worker count, served batches must beat the
  // ScaleMine enumeration baseline (the point of serving FSM through the
  // batch path), and every frequent set must agree.
  bool all_agree = true;
  double best_speedup = 0.0;
  for (const Row& row : rows) {
    all_agree = all_agree && row.agree;
    if (row.workers == worker_counts.back()) {
      best_speedup = std::max(best_speedup,
                              row.enum_s / std::max(1e-9, row.served_s));
    }
  }
  std::printf("\nserved-vs-enumeration speedup at %zu workers: %.1fx; "
              "frequent sets %s\n",
              worker_counts.back(), best_speedup,
              all_agree ? "agree" : "MISMATCH");

  // --- JSON artifact ------------------------------------------------------
  const char* env = std::getenv("PSI_BENCH_FSM_JSON");
  const std::string json_path = env != nullptr ? env : "BENCH_fsm.json";
  {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"fsm\",\n"
        << "  \"scale\": " << scale << ",\n"
        << "  \"served_speedup_vs_enumeration\": " << best_speedup << ",\n"
        << "  \"frequent_sets_agree\": " << (all_agree ? "true" : "false")
        << ",\n  \"rows\": [";
    bool first = true;
    for (const Row& row : rows) {
      out << (first ? "" : ",") << "\n    {\"dataset\": \"" << row.dataset
          << "\", \"workers\": " << row.workers
          << ", \"enum_s\": " << row.enum_s << ", \"psi_s\": " << row.psi_s
          << ", \"served_s\": " << row.served_s
          << ", \"patterns\": " << row.patterns
          << ", \"agree\": " << (row.agree ? "true" : "false")
          << ", \"batches\": " << row.batches
          << ", \"context_hits\": " << row.context_hits << "}";
      first = false;
    }
    out << "\n  ]\n}\n";
  }
  std::cout << "Wrote " << json_path << "\n";
  return best_speedup > 1.0 && all_agree ? 0 : 1;
}
