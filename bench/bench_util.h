#ifndef SMARTPSI_BENCH_BENCH_UTIL_H_
#define SMARTPSI_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "graph/datasets.h"
#include "graph/query_extractor.h"
#include "graph/query_graph.h"
#include "util/random.h"

namespace psi::bench {

/// All reproduction harnesses run with no arguments at a quick laptop
/// scale; PSI_BENCH_SCALE=N (integer >= 1) multiplies workload sizes and
/// per-query time budgets so the paper's larger regimes can be approached.
inline int BenchScale() {
  const char* env = std::getenv("PSI_BENCH_SCALE");
  if (env == nullptr) return 1;
  const int value = std::atoi(env);
  return value >= 1 ? value : 1;
}

/// Seed shared by every bench (printed in the banner for reproducibility).
inline constexpr uint64_t kBenchSeed = 20190326;  // EDBT'19 opening day

/// Default generation scales for the dataset stand-ins so each bench runs
/// in laptop time. Small datasets are full-size; the large social graphs
/// are scaled down uniformly (see DESIGN.md §3 — relative comparisons are
/// preserved because every competitor sees the same graph).
inline double DefaultStandInScale(graph::Dataset d) {
  switch (d) {
    case graph::Dataset::kYeast:
    case graph::Dataset::kCora:
    case graph::Dataset::kHuman:
      return 1.0;
    case graph::Dataset::kYouTube:
      return 0.004;   // ~20k nodes, ~170k edges
    case graph::Dataset::kTwitter:
      return 0.002;   // ~23k nodes, ~171k edges
    case graph::Dataset::kWeibo:
      return 0.0005;  // ~830 nodes but Weibo density: ~185k edges
  }
  return 1.0;
}

inline graph::Graph MakeStandIn(graph::Dataset d, double extra_scale = 1.0) {
  return graph::MakeDataset(d, DefaultStandInScale(d) * extra_scale,
                            kBenchSeed);
}

/// Extracts `count` pivoted queries of `size` nodes (paper §5.1 workload:
/// random walk with restart + random pivot).
inline std::vector<graph::QueryGraph> MakeWorkload(const graph::Graph& g,
                                                   size_t size, size_t count,
                                                   uint64_t seed_offset = 0) {
  graph::QueryExtractor extractor(g);
  util::Rng rng(kBenchSeed ^ (0x9e37ULL * (size + seed_offset + 1)));
  return extractor.ExtractMany(size, count, rng);
}

inline void PrintBanner(const std::string& title, const std::string& paper,
                        const std::string& notes) {
  std::cout << "==================================================\n"
            << title << "\n"
            << "Reproduces: " << paper << "\n"
            << "Seed: " << kBenchSeed << "  PSI_BENCH_SCALE=" << BenchScale()
            << "  hardware threads: "
            << std::thread::hardware_concurrency() << "\n";
  if (!notes.empty()) std::cout << notes << "\n";
  std::cout << "==================================================\n";
}

/// "1.3e+07"-style count cell, "NA" for censored runs (matches Table 1).
inline std::string CountCell(double value, bool censored) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%.1e", censored ? ">=" : "", value);
  return buf;
}

/// Seconds cell; censored runs print ">limit" like the paper's ">24 hrs".
inline std::string TimeCell(double seconds, bool censored,
                            double limit_seconds) {
  char buf[64];
  if (censored) {
    std::snprintf(buf, sizeof(buf), ">%.1fs", limit_seconds);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}

}  // namespace psi::bench

#endif  // SMARTPSI_BENCH_BENCH_UTIL_H_
