// Figure 12 reproduction: frequent subgraph mining with ScaleMine-style
// subgraph-isomorphism support evaluation vs ScaleMine+SmartPSI (PSI-based
// support), on the Twitter (a) and Weibo (b) stand-ins, sweeping the number
// of parallel workers (the in-process stand-in for the paper's Cray compute
// nodes; see DESIGN.md §3).

#include <iostream>

#include "bench/bench_util.h"
#include "fsm/miner.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {
using namespace psi;
}  // namespace

int main() {
  const int scale = bench::BenchScale();
  const double budget = 30.0 * scale;  // per mining run

  bench::PrintBanner(
      "Figure 12: ScaleMine vs ScaleMine+SmartPSI (FSM)",
      "Abdelhamid et al., EDBT'19, Figure 12 (a,b)",
      "Support thresholds scaled to the stand-in sizes; max pattern 6 "
      "edges\n(Weibo, as in the paper) / 4 edges (Twitter).");

  struct Case {
    graph::Dataset dataset;
    // Thresholds are scaled to stand-in size: the paper uses 155K (Twitter)
    // and 460K (Weibo) on the full graphs.
    uint64_t min_support;
    size_t max_edges;
  };
  const std::vector<Case> cases = {
      {graph::Dataset::kTwitter, 1200, 3},
      {graph::Dataset::kWeibo, 40, 4},
  };
  const std::vector<size_t> worker_counts = {1, 2, 4, 8};

  for (const Case& c : cases) {
    const graph::Graph g = bench::MakeStandIn(c.dataset);
    std::cout << "\n--- Figure 12: " << graph::GetDatasetSpec(c.dataset).name
              << " (" << g.num_nodes() << " nodes, " << g.num_edges()
              << " edges, support>=" << c.min_support << ", max "
              << c.max_edges << " edges) ---\n";

    util::TablePrinter table(
        {"Workers", "ScaleMine", "ScaleMine+SmartPSI", "Speedup",
         "#patterns"});
    for (const size_t workers : worker_counts) {
      fsm::FsmConfig base;
      base.min_support = c.min_support;
      base.max_edges = c.max_edges;
      base.num_threads = workers;

      fsm::FsmConfig enum_config = base;
      enum_config.method = fsm::SupportMethod::kEnumeration;
      const auto by_enum =
          fsm::FsmMiner(g, enum_config).Mine(util::Deadline::After(budget));

      fsm::FsmConfig psi_config = base;
      psi_config.method = fsm::SupportMethod::kPsi;
      const auto by_psi =
          fsm::FsmMiner(g, psi_config).Mine(util::Deadline::After(budget));

      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.1fx",
                    by_enum.seconds / std::max(1e-9, by_psi.seconds));
      table.AddRow({std::to_string(workers),
                    bench::TimeCell(by_enum.seconds, !by_enum.complete,
                                    budget),
                    bench::TimeCell(by_psi.seconds, !by_psi.complete,
                                    budget),
                    speedup,
                    std::to_string(by_psi.frequent.size())});
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): both scale with workers (needs >= "
               "that many\nhardware threads); the PSI variant is consistently "
               "faster (paper: up to\n5x on Twitter, 6x on Weibo).\n";
  return 0;
}
