// Equivalence-exploitation study (extension, after BoostIso — paper §6.1):
// how much PSI work does evaluating one representative per twin class save
// on twin-rich power-law graphs?

#include <iostream>

#include "bench/bench_util.h"
#include "core/smart_psi.h"
#include "graph/equivalence.h"
#include "graph/generators.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {
using namespace psi;
}  // namespace

int main() {
  const int scale = bench::BenchScale();
  const size_t queries_per_size = 3 * scale;

  bench::PrintBanner("Equivalence exploitation (BoostIso-style twins)",
                     "(extension; not a paper table)",
                     std::to_string(queries_per_size) +
                         " queries per size on a twin-rich power-law "
                         "graph.");

  // Preferential-attachment tree: hubs accumulate many same-label
  // degree-1 leaves, the classic twin population BoostIso exploits.
  util::Rng gen_rng(bench::kBenchSeed);
  graph::LabelConfig label_config;
  label_config.num_labels = 4;
  label_config.zipf_exponent = 0.5;
  const graph::Graph g =
      graph::BarabasiAlbert(120000, 1, label_config, gen_rng);
  util::WallTimer class_timer;
  const graph::EquivalenceClasses classes =
      graph::ComputeSyntacticEquivalence(g);
  std::cout << "Graph: " << g.num_nodes() << " nodes, "
            << g.num_edges() << " edges; " << classes.num_classes()
            << " equivalence classes ("
            << 100.0 * static_cast<double>(classes.num_classes()) /
                   static_cast<double>(g.num_nodes())
            << "% of nodes), computed in "
            << bench::TimeCell(class_timer.Seconds(), false, 0) << "\n";

  core::SmartPsiConfig base;
  base.min_candidates_for_ml = 8;
  core::SmartPsiEngine plain(g, base);
  core::SmartPsiConfig dedup_config = base;
  dedup_config.exploit_equivalence = true;
  core::SmartPsiEngine dedup(g, dedup_config);

  util::TablePrinter table(
      {"Size", "SmartPSI", "SmartPSI+equiv", "Speedup"});
  for (const size_t size : {3u, 4u, 5u, 6u}) {
    const auto workload = bench::MakeWorkload(g, size, queries_per_size);
    double plain_seconds = 0.0;
    double dedup_seconds = 0.0;
    for (const auto& q : workload) {
      util::WallTimer t1;
      plain.Evaluate(q);
      plain_seconds += t1.Seconds();
      util::WallTimer t2;
      dedup.Evaluate(q);
      dedup_seconds += t2.Seconds();
    }
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  plain_seconds / std::max(1e-9, dedup_seconds));
    table.AddRow({std::to_string(size),
                  bench::TimeCell(plain_seconds, false, 0),
                  bench::TimeCell(dedup_seconds, false, 0), speedup});
  }
  table.Print(std::cout);
  std::cout << "\nReading guide: the win tracks the twin fraction of the "
               "candidate sets;\npower-law graphs put many degree-1 twins "
               "under each hub.\n";
  return 0;
}
