// §5.4 reproduction ("Machine Learning Models"): Random Forest vs SVM vs
// Neural Network as SmartPSI's node-type classifier on Human.
//
// Training data is built the way SmartPSI builds it: neighborhood-signature
// feature vectors labeled by exact pessimistic evaluation. Paper result:
// RF ~95% accuracy vs SVM ~90% / NN ~92%, and RF ~2x faster to build+apply.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "core/query_context.h"
#include "match/plan.h"
#include "match/psi_evaluator.h"
#include "ml/linear_svm.h"
#include "ml/metrics.h"
#include "ml/neural_net.h"
#include "ml/random_forest.h"
#include "signature/builders.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {
using namespace psi;
}  // namespace

int main() {
  const int scale = bench::BenchScale();
  const size_t queries = 4 * scale;
  const size_t query_size = 5;

  bench::PrintBanner("§5.4: RF vs SVM vs NN node-type classifiers",
                     "Abdelhamid et al., EDBT'19, §5.4 (text)",
                     std::to_string(queries) + " queries of size " +
                         std::to_string(query_size) + " on Human.");

  const graph::Graph g = bench::MakeStandIn(graph::Dataset::kHuman);
  const auto sigs = signature::BuildMatrixSignatures(g, 2, g.num_labels());

  // Build one labeled dataset per query, then aggregate metrics.
  double rf_acc = 0, svm_acc = 0, nn_acc = 0;
  double rf_time = 0, svm_time = 0, nn_time = 0;
  size_t evaluated_queries = 0;

  for (const auto& q : bench::MakeWorkload(g, query_size, queries)) {
    const core::QueryContext ctx = core::PrepareQuery(g, sigs, q);
    if (!ctx.feasible || ctx.candidates.size() < 50) continue;

    // Ground-truth labels by exact pessimistic evaluation.
    match::PsiEvaluator evaluator(g, sigs);
    evaluator.BindQuery(q, ctx.query_sigs,
                        match::MakeHeuristicPlan(q, g, q.pivot()));
    ml::Dataset data(sigs.num_labels());
    match::PsiEvaluator::Options options;
    options.mode = match::PsiMode::kPessimistic;
    for (const graph::NodeId u : ctx.candidates) {
      const bool valid =
          evaluator.EvaluateNode(u, options) == match::Outcome::kValid;
      data.AddExample(sigs.row(u), valid ? 1 : 0);
    }

    util::Rng rng(bench::kBenchSeed + evaluated_queries);
    const ml::TrainTestSplit split =
        ml::MakeTrainTestSplit(data.size(), 0.5, rng);
    if (split.train.empty() || split.test.empty()) continue;
    ++evaluated_queries;

    std::vector<int32_t> actual;
    for (const size_t i : split.test) actual.push_back(data.label(i));

    auto evaluate_model = [&](auto& model, double& acc_sum,
                              double& time_sum) {
      util::WallTimer timer;
      model.Train(data, split.train, 2, {}, rng);
      std::vector<int32_t> predicted;
      for (const size_t i : split.test) {
        predicted.push_back(model.Predict(data.row(i)));
      }
      time_sum += timer.Seconds();
      acc_sum += ml::Accuracy(predicted, actual);
    };

    ml::RandomForest rf;
    evaluate_model(rf, rf_acc, rf_time);
    ml::LinearSvm svm;
    evaluate_model(svm, svm_acc, svm_time);
    ml::NeuralNet nn;
    evaluate_model(nn, nn_acc, nn_time);
  }

  if (evaluated_queries == 0) {
    std::cout << "No query produced enough candidates; rerun with a larger "
                 "PSI_BENCH_SCALE.\n";
    return 0;
  }

  util::TablePrinter table({"Model", "Accuracy", "Train+predict time"});
  auto add_row = [&](const std::string& name, double acc, double time) {
    char acc_cell[32];
    std::snprintf(acc_cell, sizeof(acc_cell), "%.1f%%",
                  100.0 * acc / static_cast<double>(evaluated_queries));
    table.AddRow({name, acc_cell,
                  bench::TimeCell(time / evaluated_queries, false, 0)});
  };
  add_row("Random Forest", rf_acc, rf_time);
  add_row("Linear SVM", svm_acc, svm_time);
  add_row("Neural Net", nn_acc, nn_time);
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper, on Human): RF ~95% > NN ~92% > SVM "
               "~90%, with\nRF also ~2x faster to build and apply.\n";
  return 0;
}
