// Thread-scaling study (extension; the paper runs SmartPSI single-threaded
// except in Figure 9): signature construction and candidate evaluation
// across engine worker counts on a large Twitter stand-in.

#include <iostream>

#include "bench/bench_util.h"
#include "core/smart_psi.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {
using namespace psi;
}  // namespace

int main() {
  const int scale = bench::BenchScale();
  const size_t queries = 3 * scale;
  const size_t query_size = 6;

  bench::PrintBanner("Thread scaling: SmartPSI workers",
                     "(extension; not a paper table)",
                     std::to_string(queries) + " queries of size " +
                         std::to_string(query_size) + " on Twitter (8x).");

  const graph::Graph g = bench::MakeStandIn(graph::Dataset::kTwitter, 8.0);
  std::cout << "Twitter stand-in: " << g.num_nodes() << " nodes, "
            << g.num_edges() << " edges\n";

  const auto workload = bench::MakeWorkload(g, query_size, queries);

  util::TablePrinter table({"Threads", "Sig build", "Train (serial)",
                            "Eval (parallel)", "Query total",
                            "Speedup vs 1"});
  double baseline_seconds = 0.0;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    core::SmartPsiConfig config;
    config.num_threads = threads;
    core::SmartPsiEngine engine(g, config);

    util::WallTimer timer;
    double train_seconds = 0.0;
    double eval_seconds = 0.0;
    for (const auto& q : workload) {
      const auto result = engine.Evaluate(q);
      train_seconds += result.train_seconds;
      eval_seconds += result.eval_seconds;
    }
    const double seconds = timer.Seconds();
    if (threads == 1) baseline_seconds = seconds;

    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  baseline_seconds / std::max(1e-9, seconds));
    table.AddRow({std::to_string(threads),
                  bench::TimeCell(engine.signature_build_seconds(), false, 0),
                  bench::TimeCell(train_seconds, false, 0),
                  bench::TimeCell(eval_seconds, false, 0),
                  bench::TimeCell(seconds, false, 0), speedup});
  }
  table.Print(std::cout);
  std::cout << "\nNotes: only the post-training candidate evaluation and the "
               "signature\nbuild parallelize; training is serial (as in the "
               "paper), bounding the\nachievable speedup by Amdahl's law. Scaling requires as many\nhardware threads as workers — on a single-core machine all rows tie.\n";
  return 0;
}
