// Thread-scaling study (extension; the paper runs SmartPSI single-threaded
// except in Figure 9): signature construction and candidate evaluation
// across engine worker counts on a large Twitter stand-in, plus a
// search-core tail-latency phase (Luby restarts and work-stealing parallel
// search, DESIGN.md §14) that writes BENCH_search.json (override the path
// with PSI_BENCH_SEARCH_JSON).

#include <algorithm>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "core/pure_drivers.h"
#include "core/smart_psi.h"
#include "signature/builders.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {
using namespace psi;

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(sorted.size() - 1, lo + 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

struct SearchConfigPoint {
  const char* name;
  size_t threads;
  bool restarts;
  double p50 = 0.0;
  double p99 = 0.0;
  double total_seconds = 0.0;
  uint64_t restarts_fired = 0;
  uint64_t nogood_hits = 0;
  uint64_t work_steals = 0;
};
}  // namespace

int main() {
  const int scale = bench::BenchScale();
  const size_t queries = 3 * scale;
  const size_t query_size = 6;

  bench::PrintBanner("Thread scaling: SmartPSI workers",
                     "(extension; not a paper table)",
                     std::to_string(queries) + " queries of size " +
                         std::to_string(query_size) + " on Twitter (8x).");

  const graph::Graph g = bench::MakeStandIn(graph::Dataset::kTwitter, 8.0);
  std::cout << "Twitter stand-in: " << g.num_nodes() << " nodes, "
            << g.num_edges() << " edges\n";

  const auto workload = bench::MakeWorkload(g, query_size, queries);

  util::TablePrinter table({"Threads", "Sig build", "Train (serial)",
                            "Eval (parallel)", "Query total",
                            "Speedup vs 1"});
  double baseline_seconds = 0.0;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    core::SmartPsiConfig config;
    config.num_threads = threads;
    core::SmartPsiEngine engine(g, config);

    util::WallTimer timer;
    double train_seconds = 0.0;
    double eval_seconds = 0.0;
    for (const auto& q : workload) {
      const auto result = engine.Evaluate(q);
      train_seconds += result.train_seconds;
      eval_seconds += result.eval_seconds;
    }
    const double seconds = timer.Seconds();
    if (threads == 1) baseline_seconds = seconds;

    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  baseline_seconds / std::max(1e-9, seconds));
    table.AddRow({std::to_string(threads),
                  bench::TimeCell(engine.signature_build_seconds(), false, 0),
                  bench::TimeCell(train_seconds, false, 0),
                  bench::TimeCell(eval_seconds, false, 0),
                  bench::TimeCell(seconds, false, 0), speedup});
  }
  table.Print(std::cout);
  std::cout << "\nNotes: only the post-training candidate evaluation and the "
               "signature\nbuild parallelize; training is serial (as in the "
               "paper), bounding the\nachievable speedup by Amdahl's law. Scaling requires as many\nhardware threads as workers — on a single-core machine all rows tie.\n";

  // --- Search-core tail latency (DESIGN.md §14) ---------------------------
  // Per-query latency distribution of the pure pessimistic driver under the
  // three search-core configurations. Restarts target the heavy tail of
  // refutation (p99); parallel search targets both ends; answers are
  // bit-identical across all rows.
  const size_t tail_queries = 12 * scale;
  const auto tail_workload = bench::MakeWorkload(g, query_size, tail_queries);
  const auto sigs =
      signature::BuildMatrixSignatures(g, 2, g.num_labels());

  std::vector<SearchConfigPoint> points = {
      {"sequential", 1, false},
      {"restarts", 1, true},
      {"parallel", 4, false},
      {"parallel+restarts", 4, true},
  };
  std::cout << "\n";
  bench::PrintBanner("Search-core tail latency: pure pessimistic driver",
                     "(extension; DESIGN.md §14)",
                     std::to_string(tail_queries) + " queries of size " +
                         std::to_string(query_size) +
                         " per configuration, same Twitter stand-in.");
  util::TablePrinter tail_table({"Config", "p50", "p99", "Total", "Restarts",
                                 "Nogood hits", "Steals"});
  for (SearchConfigPoint& point : points) {
    core::PureDriverOptions pure;
    pure.strategy = core::PureStrategy::kPessimistic;
    pure.search_threads = point.threads;
    pure.restarts.enabled = point.restarts;
    match::SearchStats stats;
    std::vector<double> latencies;
    latencies.reserve(tail_workload.size());
    util::WallTimer timer;
    for (const auto& q : tail_workload) {
      util::WallTimer query_timer;
      const auto result = core::EvaluatePure(g, sigs, q, pure);
      latencies.push_back(query_timer.Seconds());
      stats += result.stats;
    }
    point.total_seconds = timer.Seconds();
    std::sort(latencies.begin(), latencies.end());
    point.p50 = Percentile(latencies, 0.50);
    point.p99 = Percentile(latencies, 0.99);
    point.restarts_fired = stats.restarts;
    point.nogood_hits = stats.nogood_hits;
    point.work_steals = stats.work_steals;
    tail_table.AddRow({point.name, bench::TimeCell(point.p50, false, 0),
                       bench::TimeCell(point.p99, false, 0),
                       bench::TimeCell(point.total_seconds, false, 0),
                       std::to_string(point.restarts_fired),
                       std::to_string(point.nogood_hits),
                       std::to_string(point.work_steals)});
  }
  tail_table.Print(std::cout);
  std::cout << "\nNotes: restarts pay off on satisfiable-but-unlucky "
               "candidates (an early exit\nexists and a perturbed order "
               "finds it); on refutation-dominated workloads like\nthis "
               "stand-in they add bounded budget overhead and nothing to "
               "prune toward.\nThe parallel rows need as many hardware "
               "threads as workers to show a win;\nanswers are bit-identical "
               "across all rows either way.\n";

  // --- JSON artifact ------------------------------------------------------
  const char* env = std::getenv("PSI_BENCH_SEARCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_search.json";
  {
    std::ofstream out(path);
    out << "{\n  \"bench\": \"search\",\n"
        << "  \"graph\": \"twitter_standin\",\n"
        << "  \"num_nodes\": " << g.num_nodes() << ",\n"
        << "  \"num_edges\": " << g.num_edges() << ",\n"
        << "  \"queries\": " << tail_queries << ",\n"
        << "  \"query_size\": " << query_size << ",\n"
        << "  \"configs\": [";
    bool first = true;
    for (const SearchConfigPoint& point : points) {
      out << (first ? "" : ",") << "\n    {\"config\": \"" << point.name
          << "\", \"search_threads\": " << point.threads
          << ", \"restarts\": " << (point.restarts ? "true" : "false")
          << ", \"p50_s\": " << point.p50 << ", \"p99_s\": " << point.p99
          << ", \"total_s\": " << point.total_seconds
          << ", \"search_restarts\": " << point.restarts_fired
          << ", \"nogood_hits\": " << point.nogood_hits
          << ", \"work_steals\": " << point.work_steals << "}";
      first = false;
    }
    out << "\n  ]\n}\n";
  }
  std::cout << "wrote " << path << "\n";
  return 0;
}
