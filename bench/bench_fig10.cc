// Figure 10 reproduction: SmartPSI vs Optimistic-only vs Pessimistic-only
// on the Twitter dataset, query sizes 4-8.
//
// The pure drivers apply one PSI method to every candidate with the
// selectivity-heuristic plan (no ML); SmartPSI predicts method + plan per
// node. Budget-exceeding cells are censored (the paper's competitors fail
// at size 8).

#include <iostream>

#include "bench/bench_util.h"
#include "core/pure_drivers.h"
#include "core/smart_psi.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {
using namespace psi;
}  // namespace

int main() {
  const int scale = bench::BenchScale();
  const size_t queries_per_size = 2 * scale;
  const double budget = 5.0 * scale;

  bench::PrintBanner("Figure 10: SmartPSI vs Optimistic vs Pessimistic",
                     "Abdelhamid et al., EDBT'19, Figure 10",
                     std::to_string(queries_per_size) +
                         " queries per size on Twitter; per-cell budget " +
                         std::to_string(budget) + "s.");

  // A larger Twitter slice than the other benches: the pure methods only
  // degrade once hub-heavy hard nodes appear (as at the paper's full
  // scale), which needs a bigger sample of the graph.
  const graph::Graph g = bench::MakeStandIn(graph::Dataset::kTwitter, 8.0);
  std::cout << "Twitter stand-in: " << g.num_nodes() << " nodes, "
            << g.num_edges() << " edges\n";

  core::SmartPsiEngine smart(g);
  const auto& sigs = smart.graph_signatures();

  util::TablePrinter table({"Size", "Optimistic", "Pessimistic", "SmartPSI"});
  for (const size_t size : {4u, 5u, 6u, 7u, 8u}) {
    const auto workload = bench::MakeWorkload(g, size, queries_per_size);
    std::vector<std::string> row{std::to_string(size)};

    for (const core::PureStrategy strategy :
         {core::PureStrategy::kOptimistic, core::PureStrategy::kPessimistic}) {
      util::WallTimer timer;
      bool censored = false;
      const util::Deadline deadline = util::Deadline::After(budget);
      for (const auto& q : workload) {
        core::PureDriverOptions options;
        options.strategy = strategy;
        options.deadline = deadline;
        censored |= !core::EvaluatePure(g, sigs, q, options).complete;
        if (deadline.Expired()) break;
      }
      row.push_back(bench::TimeCell(timer.Seconds(), censored, budget));
    }
    {
      util::WallTimer timer;
      bool censored = false;
      const util::Deadline deadline = util::Deadline::After(budget);
      for (const auto& q : workload) {
        censored |= !smart.Evaluate(q, deadline).complete;
        if (deadline.Expired()) break;
      }
      row.push_back(bench::TimeCell(timer.Seconds(), censored, budget));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): SmartPSI fastest; the pure "
               "methods degrade\nand are censored first as query size "
               "grows.\n";
  return 0;
}
