// Figure 8 reproduction: exploration-based vs matrix-based neighborhood
// signature construction time across the six datasets (depth D = 2).
//
// The paper's exploration method is O(N·L·d^D) and times out on Twitter;
// the matrix method is O(N·L·d·D) and stays ~2 orders of magnitude faster
// on the large dense graphs. Exploration runs past the budget are censored.

#include <iostream>
#include <thread>

#include "bench/bench_util.h"
#include "signature/builders.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {
using namespace psi;
}  // namespace

int main() {
  const int scale = bench::BenchScale();
  const double exploration_budget = 60.0 * scale;

  bench::PrintBanner(
      "Figure 8: signature construction, exploration vs matrix",
      "Abdelhamid et al., EDBT'19, Figure 8",
      "Depth D=2, single thread (both methods), all six stand-ins.");

  util::TablePrinter table({"Dataset", "Nodes", "Edges", "AvgDeg",
                            "Exploration", "Matrix", "Speedup"});

  for (const graph::Dataset dataset : graph::AllDatasets()) {
    const graph::Graph g = bench::MakeStandIn(dataset);

    util::WallTimer matrix_timer;
    const auto matrix =
        signature::BuildMatrixSignatures(g, 2, g.num_labels());
    const double matrix_seconds = matrix_timer.Seconds();

    // Exploration can be slow on the dense stand-ins; censor by measuring
    // a prefix of nodes when the projected total exceeds the budget.
    util::WallTimer expl_timer;
    const auto exploration =
        signature::BuildExplorationSignatures(g, 2, g.num_labels());
    const double expl_seconds = expl_timer.Seconds();
    const bool censored = expl_seconds > exploration_budget;
    (void)exploration;

    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  expl_seconds / std::max(1e-9, matrix_seconds));
    table.AddRow({graph::GetDatasetSpec(dataset).name,
                  std::to_string(g.num_nodes()),
                  std::to_string(g.num_edges()),
                  std::to_string(static_cast<int>(g.average_degree())),
                  bench::TimeCell(expl_seconds, censored, exploration_budget),
                  bench::TimeCell(matrix_seconds, false, 0),
                  speedup});
    (void)matrix;
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape (paper): both grow with graph size; "
               "exploration falls\nfurther behind as density rises (Human, "
               "Weibo), with the matrix method\nup to ~2 orders of magnitude "
               "faster on the social graphs.\n";
  return 0;
}
