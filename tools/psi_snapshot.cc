// psi_snapshot — build, inspect and verify binary .psnap snapshot files
// (DESIGN.md §16). A snapshot bundles a graph's CSR, its float signature
// matrix, the 8-bit compact codes and the memoized row hashes into one
// checksummed file that psi_serve can mmap and serve without rebuilding.
//
//   psi_snapshot build graph.lg --out graph.psnap --depth 2
//   psi_snapshot build --generate 100000,400000,8 --seed 7 --out g.psnap
//   psi_snapshot inspect graph.psnap
//   psi_snapshot verify graph.psnap

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "service/snapshot_io.h"
#include "signature/builders.h"
#include "signature/signature_matrix.h"
#include "tools/tool_args.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using namespace psi;

void Usage() {
  std::cerr <<
      "Usage: psi_snapshot build <graph.lg> --out FILE [options]\n"
      "       psi_snapshot build --generate N,M[,L] --out FILE [options]\n"
      "       psi_snapshot inspect <file.psnap>\n"
      "       psi_snapshot verify <file.psnap>\n"
      "  build    load (or generate) a graph, build signatures + compact\n"
      "           codes + row hashes, write one .psnap file\n"
      "  inspect  print the header and section summary (no payload reads)\n"
      "  verify   run the full load path: structure, checksums, CSR\n"
      "           invariants; exit 0 iff the file would serve\n"
      "Build options:\n"
      "  --out FILE        output path (required)\n"
      "  --depth D         signature depth (default 2)\n"
      "  --method NAME     exploration|matrix (default matrix)\n"
      "  --decay X         exploration decay in (0,1] (default 0.5)\n"
      "  --no-compact      skip the 8-bit compact signature section\n"
      "  --generate N,M[,L] Erdos-Renyi stand-in instead of a .lg file\n"
      "  --seed S          RNG seed for --generate (default 42)\n";
}

int RunBuild(const tools::ParsedArgs& args) {
  const std::string out = args.Get("--out", "");
  if (out.empty()) {
    std::cerr << "psi_snapshot build: --out is required\n";
    return 2;
  }

  graph::Graph g;
  if (args.Has("--generate")) {
    size_t nodes = 0, edges = 0, labels = 8;
    if (std::sscanf(args.Get("--generate", "").c_str(), "%zu,%zu,%zu", &nodes,
                    &edges, &labels) < 2) {
      std::cerr << "bad --generate spec (want N,M[,L])\n";
      return 2;
    }
    util::Rng rng(
        std::strtoull(args.Get("--seed", "42").c_str(), nullptr, 10));
    graph::LabelConfig label_config;
    label_config.num_labels = labels;
    g = graph::RelabelWithHomophily(
        graph::ErdosRenyi(nodes, edges, label_config, rng), 0.6, 2, rng);
  } else if (args.positional.size() >= 2) {
    auto loaded = graph::LoadLgFile(args.positional[1]);
    if (!loaded.ok()) {
      std::cerr << loaded.status().ToString() << "\n";
      return 1;
    }
    g = std::move(loaded).value();
  } else {
    std::cerr << "psi_snapshot build: need a graph file or --generate\n";
    return 2;
  }

  const uint32_t depth = static_cast<uint32_t>(
      std::strtoul(args.Get("--depth", "2").c_str(), nullptr, 10));
  const float decay =
      static_cast<float>(std::atof(args.Get("--decay", "0.5").c_str()));
  signature::Method method = signature::Method::kMatrix;
  const std::string method_name = args.Get("--method", "matrix");
  if (method_name == "exploration") {
    method = signature::Method::kExploration;
  } else if (method_name != "matrix") {
    std::cerr << "unknown --method '" << method_name
              << "' (want exploration|matrix)\n";
    return 2;
  }

  util::WallTimer build_timer;
  signature::SignatureMatrix sigs = signature::BuildSignatures(
      g, method, depth, g.num_labels(), /*pool=*/nullptr, decay);
  if (!args.Has("--no-compact")) sigs.BuildCompact();
  const double build_seconds = build_timer.Seconds();

  util::WallTimer save_timer;
  const auto status = service::SaveSnapshotFile(g, sigs, out);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  std::cout << "Wrote " << out << ": " << g.num_nodes() << " nodes, "
            << g.num_edges() << " edges, " << g.num_labels() << " labels, "
            << signature::MethodName(method) << "/depth=" << depth
            << (args.Has("--no-compact") ? "" : " +compact")
            << " (built in " << build_seconds << " s, saved in "
            << save_timer.Seconds() << " s)\n";
  return 0;
}

int RunInspect(const std::string& path) {
  const auto info = service::DescribeSnapshotFile(path);
  if (!info.ok()) {
    std::cerr << info.status().ToString() << "\n";
    return 1;
  }
  const service::SnapshotFileInfo& i = info.value();
  std::cout << path << ": psnap v" << i.version << " "
            << signature::MethodName(i.method) << " depth=" << i.depth
            << " decay=" << i.decay << " compact="
            << (i.has_compact ? "yes" : "no") << "\n"
            << "  nodes=" << i.num_nodes << " edges=" << i.num_edges
            << " labels=" << i.num_labels << " sig_labels=" << i.sig_labels
            << " sections=" << i.num_sections << " bytes=" << i.file_bytes
            << "\n";
  return 0;
}

int RunVerify(const std::string& path) {
  util::WallTimer load_timer;
  auto loaded = service::LoadSnapshotFile(path);
  if (!loaded.ok()) {
    std::cerr << path << ": " << loaded.status().ToString() << "\n";
    return 1;
  }
  const service::LoadedSnapshot& s = loaded.value();
  std::cout << path << ": ok (" << s.graph.num_nodes() << " nodes, "
            << s.graph.num_edges() << " edges, "
            << (s.sigs.compact() != nullptr ? "compact" : "float-only")
            << " signatures, loaded in " << load_timer.Seconds() << " s)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  tools::ArgSpec arg_spec;
  arg_spec.switches = {"--no-compact"};
  arg_spec.options = {"--out",   "--depth", "--method",
                      "--decay", "--generate", "--seed"};
  arg_spec.max_positional = 2;  // subcommand + path
  const tools::ParsedArgs args = tools::ParseArgs(argc, argv, arg_spec);
  if (!args.ok()) {
    std::cerr << "psi_snapshot: " << args.error << "\n";
    Usage();
    return 2;
  }
  if (args.positional.empty()) {
    Usage();
    return 2;
  }
  const std::string& mode = args.positional[0];
  if (mode == "build") return RunBuild(args);
  if (mode == "inspect" || mode == "verify") {
    if (args.positional.size() < 2) {
      std::cerr << "psi_snapshot " << mode << ": need a .psnap path\n";
      return 2;
    }
    return mode == "inspect" ? RunInspect(args.positional[1])
                             : RunVerify(args.positional[1]);
  }
  std::cerr << "psi_snapshot: unknown mode '" << mode << "'\n";
  Usage();
  return 2;
}
