#ifndef SMARTPSI_TOOLS_TOOL_ARGS_H_
#define SMARTPSI_TOOLS_TOOL_ARGS_H_

// Strict command-line parsing shared by the tools. The historical parsers
// consumed any unknown "--x value" pair silently, so a typo (or a flag
// meant for a different tool, like --shards before it existed) changed
// nothing and reported nothing. Here every flag must be declared: unknown
// flags, missing values and stray positionals all produce a nonzero-exit
// error instead of silently skewing the run.
//
// Header-only so the regression test can drive the parser directly.

#include <map>
#include <string>
#include <vector>

namespace psi::tools {

/// What a tool accepts: boolean switches (no value), value-taking options,
/// and at most `max_positional` bare arguments.
struct ArgSpec {
  std::vector<std::string> switches;
  std::vector<std::string> options;
  size_t max_positional = 1;
};

struct ParsedArgs {
  /// Switches map to "1"; options map to their value.
  std::map<std::string, std::string> values;
  std::vector<std::string> positional;
  /// Empty on success; a one-line diagnostic otherwise.
  std::string error;

  bool ok() const { return error.empty(); }
  bool Has(const std::string& key) const { return values.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
};

inline ParsedArgs ParseArgs(int argc, const char* const* argv,
                            const ArgSpec& spec) {
  ParsedArgs parsed;
  auto contains = [](const std::vector<std::string>& pool,
                     const std::string& key) {
    for (const std::string& entry : pool) {
      if (entry == key) return true;
    }
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (contains(spec.switches, key)) {
      parsed.values[key] = "1";
    } else if (contains(spec.options, key)) {
      if (i + 1 >= argc) {
        parsed.error = "missing value for " + key;
        return parsed;
      }
      parsed.values[key] = argv[++i];
    } else if (key.rfind("--", 0) == 0) {
      parsed.error = "unknown flag " + key;
      return parsed;
    } else if (parsed.positional.size() < spec.max_positional) {
      parsed.positional.push_back(key);
    } else {
      parsed.error = "unexpected argument '" + key + "'";
      return parsed;
    }
  }
  return parsed;
}

}  // namespace psi::tools

#endif  // SMARTPSI_TOOLS_TOOL_ARGS_H_
