// psi_mine — frequent subgraph mining from the command line, with MNI
// support computed by subgraph-isomorphism enumeration or by PSI.
//
//   psi_mine graph.lg --support 100 --max-edges 4 --method psi --threads 8

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "fsm/miner.h"
#include "graph/graph_io.h"
#include "util/stats.h"

namespace {

using namespace psi;

void Usage() {
  std::cerr <<
      "Usage: psi_mine <graph.lg> [options]\n"
      "  --support N     MNI support threshold (default 100)\n"
      "  --max-edges E   maximum pattern size in edges (default 4)\n"
      "  --method M      psi (default) | enumeration\n"
      "  --threads T     parallel workers (default 1)\n"
      "  --timeout SEC   overall mining deadline (default none)\n"
      "  --print K       print the first K patterns (default 10)\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argv[1][0] == '-') {
    Usage();
    return 2;
  }
  std::map<std::string, std::string> args;
  for (int i = 2; i + 1 < argc; i += 2) args[argv[i]] = argv[i + 1];
  auto get = [&](const std::string& key,
                 const std::string& fallback) -> std::string {
    const auto it = args.find(key);
    return it == args.end() ? fallback : it->second;
  };

  auto loaded = graph::LoadLgFile(argv[1]);
  if (!loaded.ok()) {
    std::cerr << loaded.status().ToString() << "\n";
    return 1;
  }
  const graph::Graph g = std::move(loaded).value();
  std::cout << "Graph: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " edges, " << g.num_labels() << " labels\n";

  fsm::FsmConfig config;
  config.min_support = std::strtoull(get("--support", "100").c_str(),
                                     nullptr, 10);
  config.max_edges = std::strtoull(get("--max-edges", "4").c_str(),
                                   nullptr, 10);
  config.num_threads = std::strtoull(get("--threads", "1").c_str(),
                                     nullptr, 10);
  const std::string method = get("--method", "psi");
  if (method == "psi") {
    config.method = fsm::SupportMethod::kPsi;
  } else if (method == "enumeration") {
    config.method = fsm::SupportMethod::kEnumeration;
  } else {
    std::cerr << "unknown method: " << method << "\n";
    return 2;
  }
  const double timeout = std::atof(get("--timeout", "0").c_str());

  fsm::FsmMiner miner(g, config);
  const fsm::FsmResult result = miner.Mine(
      timeout > 0 ? util::Deadline::After(timeout) : util::Deadline());

  std::cout << "Mined " << result.frequent.size() << " frequent patterns in "
            << util::FormatDuration(result.seconds) << " ("
            << result.candidates_evaluated << " candidates, method "
            << fsm::SupportMethodName(config.method) << ")";
  if (!result.complete) std::cout << " [INCOMPLETE: deadline]";
  std::cout << "\n";

  const size_t to_print = std::min<size_t>(
      std::strtoull(get("--print", "10").c_str(), nullptr, 10),
      result.frequent.size());
  for (size_t i = 0; i < to_print; ++i) {
    std::cout << "  support>=" << result.frequent[i].support << "  "
              << result.frequent[i].pattern.ToString() << "\n";
  }
  if (to_print < result.frequent.size()) {
    std::cout << "  ... and " << result.frequent.size() - to_print
              << " more\n";
  }
  return 0;
}
