// psi_mine — frequent subgraph mining from the command line, with MNI
// support computed by subgraph-isomorphism enumeration, by in-process PSI,
// or through a PsiService's batched submission path (--serve).
//
//   psi_mine graph.lg --support 100 --max-edges 4 --method psi --threads 8
//   psi_mine graph.lg --support 100 --serve --workers 8 --queue 256

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "fsm/miner.h"
#include "graph/graph_io.h"
#include "service/service.h"
#include "tools/tool_args.h"
#include "util/stats.h"

namespace {

using namespace psi;

void Usage() {
  std::cerr <<
      "Usage: psi_mine <graph.lg> [options]\n"
      "  --support N     MNI support threshold (default 100)\n"
      "  --max-edges E   maximum pattern size in edges (default 4)\n"
      "  --method M      psi (default) | enumeration\n"
      "  --threads T     parallel workers (default 1)\n"
      "  --timeout SEC   overall mining deadline (default none)\n"
      "  --print K       print the first K patterns (default 10)\n"
      "  --depth D       signature depth for psi / serve (default 2)\n"
      "serve mode (support counting through the batched service path):\n"
      "  --serve         route per-pivot probes through a PsiService\n"
      "                  (one SubmitBatch per candidate pattern)\n"
      "  --workers N     service workers in serve mode (default 4)\n"
      "  --queue N       service admission queue bound (default 256)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const tools::ArgSpec spec{
      /*switches=*/{"--serve"},
      /*options=*/{"--support", "--max-edges", "--method", "--threads",
                   "--timeout", "--print", "--depth", "--workers", "--queue"},
      /*max_positional=*/1};
  const tools::ParsedArgs args = tools::ParseArgs(argc, argv, spec);
  if (!args.ok()) {
    std::cerr << "psi_mine: " << args.error << "\n";
    Usage();
    return 2;
  }
  if (args.positional.size() != 1) {
    std::cerr << "psi_mine: expected exactly one <graph.lg> argument\n";
    Usage();
    return 2;
  }

  auto loaded = graph::LoadLgFile(args.positional[0]);
  if (!loaded.ok()) {
    std::cerr << loaded.status().ToString() << "\n";
    return 1;
  }
  const graph::Graph g = std::move(loaded).value();
  std::cout << "Graph: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " edges, " << g.num_labels() << " labels\n";

  fsm::FsmConfig config;
  config.min_support =
      std::strtoull(args.Get("--support", "100").c_str(), nullptr, 10);
  config.max_edges =
      std::strtoull(args.Get("--max-edges", "4").c_str(), nullptr, 10);
  config.num_threads =
      std::strtoull(args.Get("--threads", "1").c_str(), nullptr, 10);
  config.signature_depth = static_cast<uint32_t>(
      std::strtoul(args.Get("--depth", "2").c_str(), nullptr, 10));
  const std::string method = args.Get("--method", "psi");
  if (method == "psi") {
    config.method = fsm::SupportMethod::kPsi;
  } else if (method == "enumeration") {
    config.method = fsm::SupportMethod::kEnumeration;
  } else {
    std::cerr << "unknown method: " << method << "\n";
    return 2;
  }
  const double timeout = std::atof(args.Get("--timeout", "0").c_str());

  // Serve mode: stand up an in-process PsiService over the graph and count
  // support through its batched submission path (DESIGN.md §17). The
  // service builds and owns the snapshot signatures.
  std::unique_ptr<service::PsiService> served;
  if (args.Has("--serve")) {
    service::ServiceOptions service_options;
    service_options.num_workers =
        std::strtoull(args.Get("--workers", "4").c_str(), nullptr, 10);
    service_options.max_queue_depth =
        std::strtoull(args.Get("--queue", "256").c_str(), nullptr, 10);
    service_options.engine.signature_depth = config.signature_depth;
    served = std::make_unique<service::PsiService>(g, service_options);
    config.service = served.get();
  }

  fsm::FsmMiner miner(g, config);
  const fsm::FsmResult result = miner.Mine(
      timeout > 0 ? util::Deadline::After(timeout) : util::Deadline());

  std::cout << "Mined " << result.frequent.size() << " frequent patterns in "
            << util::FormatDuration(result.seconds) << " ("
            << result.candidates_evaluated << " candidates, method "
            << (served != nullptr ? "served-psi"
                                  : fsm::SupportMethodName(config.method))
            << ")";
  if (!result.complete) std::cout << " [INCOMPLETE: deadline]";
  std::cout << "\n";
  if (served != nullptr) {
    const service::ServiceStats stats = served->Stats();
    std::cout << "Service: batches=" << stats.metrics.batch_submitted
              << " queries=" << stats.metrics.batch_queries
              << " context_hits=" << stats.metrics.batch_context_hits
              << " signature_build="
              << util::FormatDuration(stats.signature_build_seconds) << "\n";
  }

  const size_t to_print = std::min<size_t>(
      std::strtoull(args.Get("--print", "10").c_str(), nullptr, 10),
      result.frequent.size());
  for (size_t i = 0; i < to_print; ++i) {
    std::cout << "  support>=" << result.frequent[i].support << "  "
              << result.frequent[i].pattern.ToString() << "\n";
  }
  if (to_print < result.frequent.size()) {
    std::cout << "  ... and " << result.frequent.size() - to_print
              << " more\n";
  }
  return 0;
}
