// psi_query — answer pivoted subgraph isomorphism queries from the command
// line with any of the library's evaluation strategies.
//
//   psi_query graph.lg --queries q.lg                       # SmartPSI
//   psi_query graph.lg --extract 6 --count 20 --engine pessimistic
//   psi_query graph.lg --queries q.lg --engine projection:cfl --verbose

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "core/pure_drivers.h"
#include "core/smart_psi.h"
#include "core/two_threaded.h"
#include "signature/builders.h"
#include "graph/graph_io.h"
#include "graph/query_extractor.h"
#include "match/cfl_match.h"
#include "match/turbo_iso.h"
#include "match/ullmann.h"
#include "match/vf2.h"
#include "tools/tool_args.h"
#include "util/stats.h"
#include "util/timer.h"

namespace {

using namespace psi;

void Usage() {
  std::cerr <<
      "Usage: psi_query <graph.lg> [options]\n"
      "  --queries FILE    pivoted query file (t/v/e/p records)\n"
      "  --extract N       extract random queries of N nodes instead\n"
      "  --count K         number of extracted queries (default 10)\n"
      "  --engine NAME     smartpsi (default) | optimistic | pessimistic |\n"
      "                    two-threaded | turboiso+ |\n"
      "                    projection:{basic,turboiso,cfl,ullmann,vf2}\n"
      "  --threads N       SmartPSI worker threads (default 1)\n"
      "  --depth D         signature depth (default 2)\n"
      "  --timeout SEC     per-query deadline (default none)\n"
      "  --seed S          RNG seed (default 42)\n"
      "  --verbose         print the matched node ids\n";
}

struct QueryAnswer {
  std::vector<graph::NodeId> valid;
  bool complete = true;
};

}  // namespace

int main(int argc, char** argv) {
  const tools::ArgSpec spec{
      /*switches=*/{"--verbose"},
      /*options=*/{"--queries", "--extract", "--count", "--engine",
                   "--threads", "--depth", "--timeout", "--seed"},
      /*max_positional=*/1};
  const tools::ParsedArgs args = tools::ParseArgs(argc, argv, spec);
  if (!args.ok()) {
    std::cerr << "psi_query: " << args.error << "\n";
    Usage();
    return 2;
  }
  if (args.positional.size() != 1) {
    std::cerr << "psi_query: expected exactly one <graph.lg> argument\n";
    Usage();
    return 2;
  }
  auto get = [&](const std::string& key, const std::string& fallback) {
    return args.Get(key, fallback);
  };

  auto loaded = graph::LoadLgFile(args.positional[0]);
  if (!loaded.ok()) {
    std::cerr << loaded.status().ToString() << "\n";
    return 1;
  }
  const graph::Graph g = std::move(loaded).value();
  std::cout << "Graph: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " edges, " << g.num_labels() << " labels\n";

  // --- Workload ---------------------------------------------------------
  std::vector<graph::QueryGraph> queries;
  if (args.Has("--queries")) {
    auto parsed = graph::LoadQueryFile(get("--queries", ""));
    if (!parsed.ok()) {
      std::cerr << parsed.status().ToString() << "\n";
      return 1;
    }
    queries = std::move(parsed).value();
  } else if (args.Has("--extract")) {
    const size_t size = std::strtoull(get("--extract", "5").c_str(),
                                      nullptr, 10);
    const size_t count = std::strtoull(get("--count", "10").c_str(),
                                       nullptr, 10);
    const uint64_t seed = std::strtoull(get("--seed", "42").c_str(),
                                        nullptr, 10);
    util::Rng rng(seed);
    queries = graph::QueryExtractor(g).ExtractMany(size, count, rng);
  } else {
    Usage();
    return 2;
  }
  if (queries.empty()) {
    std::cerr << "no queries to run\n";
    return 1;
  }

  const double timeout = std::atof(get("--timeout", "0").c_str());
  auto deadline = [&]() {
    return timeout > 0 ? util::Deadline::After(timeout) : util::Deadline();
  };
  const bool verbose = args.Has("--verbose");
  const std::string engine_name = get("--engine", "smartpsi");
  const uint32_t depth = static_cast<uint32_t>(
      std::strtoul(get("--depth", "2").c_str(), nullptr, 10));

  // --- Engine selection ---------------------------------------------------
  std::function<QueryAnswer(const graph::QueryGraph&)> run;
  std::unique_ptr<core::SmartPsiEngine> smart;
  signature::SignatureMatrix sigs;
  std::unique_ptr<match::MatchingEngine> projector;
  std::unique_ptr<match::TurboIsoEngine> turbo;
  std::unique_ptr<core::TwoThreadedBaseline> two_threaded;

  if (engine_name == "smartpsi") {
    core::SmartPsiConfig config;
    config.signature_depth = depth;
    config.num_threads = std::strtoull(get("--threads", "1").c_str(),
                                       nullptr, 10);
    smart = std::make_unique<core::SmartPsiEngine>(g, config);
    run = [&](const graph::QueryGraph& q) {
      const auto r = smart->Evaluate(q, deadline());
      return QueryAnswer{r.valid_nodes, r.complete};
    };
  } else if (engine_name == "optimistic" || engine_name == "pessimistic") {
    sigs = signature::BuildMatrixSignatures(g, depth, g.num_labels());
    const auto strategy = engine_name == "optimistic"
                              ? core::PureStrategy::kOptimistic
                              : core::PureStrategy::kPessimistic;
    run = [&, strategy](const graph::QueryGraph& q) {
      core::PureDriverOptions options;
      options.strategy = strategy;
      options.deadline = deadline();
      const auto r = core::EvaluatePure(g, sigs, q, options);
      return QueryAnswer{r.valid_nodes, r.complete};
    };
  } else if (engine_name == "two-threaded") {
    sigs = signature::BuildMatrixSignatures(g, depth, g.num_labels());
    two_threaded = std::make_unique<core::TwoThreadedBaseline>(g, sigs);
    run = [&](const graph::QueryGraph& q) {
      core::TwoThreadedBaseline::Options options;
      options.deadline = deadline();
      const auto r = two_threaded->Evaluate(q, options);
      return QueryAnswer{r.valid_nodes, r.complete};
    };
  } else if (engine_name == "turboiso+") {
    turbo = std::make_unique<match::TurboIsoEngine>(g);
    run = [&](const graph::QueryGraph& q) {
      match::MatchingEngine::Options options;
      options.deadline = deadline();
      const auto r = turbo->EvaluatePsi(q, options);
      return QueryAnswer{r.valid_nodes, r.complete};
    };
  } else if (engine_name.rfind("projection:", 0) == 0) {
    const std::string which = engine_name.substr(11);
    if (which == "basic") {
      projector = std::make_unique<match::BasicEngine>(g);
    } else if (which == "turboiso") {
      projector = std::make_unique<match::TurboIsoEngine>(g);
    } else if (which == "cfl") {
      projector = std::make_unique<match::CflMatchEngine>(g);
    } else if (which == "ullmann") {
      projector = std::make_unique<match::UllmannEngine>(g);
    } else if (which == "vf2") {
      projector = std::make_unique<match::Vf2Engine>(g);
    } else {
      std::cerr << "unknown projection engine: " << which << "\n";
      return 2;
    }
    run = [&](const graph::QueryGraph& q) {
      match::MatchingEngine::Options options;
      options.deadline = deadline();
      const auto r = projector->ProjectPivot(q, options);
      return QueryAnswer{r.pivot_matches, r.complete};
    };
  } else {
    std::cerr << "unknown engine: " << engine_name << "\n";
    Usage();
    return 2;
  }

  // --- Run ----------------------------------------------------------------
  std::cout << "Engine: " << engine_name << ", " << queries.size()
            << " queries\n";
  util::RunningStats times;
  size_t incomplete = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    util::WallTimer timer;
    const QueryAnswer answer = run(queries[i]);
    const double seconds = timer.Seconds();
    times.Add(seconds);
    incomplete += answer.complete ? 0 : 1;
    std::cout << "  query " << i << ": " << answer.valid.size()
              << " valid nodes in " << util::FormatDuration(seconds)
              << (answer.complete ? "" : " [INCOMPLETE]");
    if (verbose) {
      std::cout << " ->";
      for (const graph::NodeId u : answer.valid) std::cout << " " << u;
    }
    std::cout << "\n";
  }
  std::cout << "Total " << util::FormatDuration(times.sum()) << ", mean "
            << util::FormatDuration(times.mean()) << ", max "
            << util::FormatDuration(times.max());
  if (incomplete > 0) std::cout << ", " << incomplete << " incomplete";
  std::cout << "\n";
  return 0;
}
