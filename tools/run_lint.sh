#!/usr/bin/env bash
# clang-tidy driver for the PSI tree (config: repo-root .clang-tidy).
#
#   tools/run_lint.sh [--require] [build-dir] [-- extra clang-tidy args]
#
# Configures `build-dir` (default: build-lint) with compile_commands.json
# exported, then runs clang-tidy over every first-party translation unit
# (src/, tools/, tests/, bench/, examples/). Exits non-zero on any finding
# (.clang-tidy sets WarningsAsErrors: '*'), which is what the CI lint job
# keys off. On machines without clang-tidy the script reports the skip and
# exits 0 so the gate only binds where the toolchain exists; CI passes
# --require, which turns a missing clang-tidy into a hard failure so the
# lint gate can never silently evaporate from CI (DESIGN.md §15.5).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
require=0
if [[ "${1:-}" == "--require" ]]; then
  require=1
  shift
fi
build_dir="${1:-build-lint}"
shift || true
[[ "${1:-}" == "--" ]] && shift

# Locate clang-tidy (plain or versioned) and, if present, the run-clang-tidy
# wrapper that parallelizes across translation units.
clang_tidy=""
for candidate in clang-tidy clang-tidy-{20,19,18,17,16,15,14}; do
  if command -v "${candidate}" >/dev/null 2>&1; then
    clang_tidy="${candidate}"
    break
  fi
done
if [[ -z "${clang_tidy}" ]]; then
  if [[ "${require}" -eq 1 ]]; then
    echo "run_lint.sh: FATAL: --require set but clang-tidy was not found in PATH." >&2
    echo "run_lint.sh: the lint gate must not be skipped here (CI uses --require)." >&2
    exit 1
  fi
  echo "run_lint.sh: clang-tidy not found; skipping lint (install clang-tidy to enable)." >&2
  exit 0
fi

cd "${repo_root}"

# A compilation database is required so clang-tidy sees the real flags and
# include paths. Reuse the build dir if it already has one.
if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  cmake -B "${build_dir}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t sources < <(git ls-files 'src/**/*.cc' 'tools/*.cc' 'tests/*.cc' \
    'bench/*.cc' 'examples/*.cc')
if [[ "${#sources[@]}" -eq 0 ]]; then
  echo "run_lint.sh: no sources found (run from a checkout)." >&2
  exit 1
fi
echo "run_lint.sh: ${clang_tidy} over ${#sources[@]} translation units" >&2

# Prefer the parallel wrapper when its version matches the located tidy.
run_wrapper=""
for candidate in run-clang-tidy "run-${clang_tidy}"; do
  if command -v "${candidate}" >/dev/null 2>&1; then
    run_wrapper="${candidate}"
    break
  fi
done

if [[ -n "${run_wrapper}" ]]; then
  "${run_wrapper}" -clang-tidy-binary "$(command -v "${clang_tidy}")" \
      -p "${build_dir}" -quiet "$@" "${sources[@]/#/${repo_root}/}"
else
  status=0
  for source in "${sources[@]}"; do
    "${clang_tidy}" -p "${build_dir}" --quiet "$@" "${source}" || status=1
  done
  exit "${status}"
fi
