#!/usr/bin/env bash
# cppcheck secondary-opinion pass (DESIGN.md §15.5).
#
#   tools/run_cppcheck.sh [--require]
#
# clang-tidy is the primary linter; cppcheck's dataflow engine catches a
# different class of defects (uninitialized members across TUs, portability
# traps), so CI runs both. Findings suppressed on purpose live in the
# checked-in .cppcheck-suppressions — edit that file, never pass ad-hoc
# --suppress flags here, so the suppression inventory stays reviewable.
#
# Without cppcheck installed the script skips and exits 0; CI passes
# --require, which turns a missing binary into a hard failure so the gate
# cannot silently evaporate.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
require=0
if [[ "${1:-}" == "--require" ]]; then
  require=1
  shift
fi

if ! command -v cppcheck >/dev/null 2>&1; then
  if [[ "${require}" -eq 1 ]]; then
    echo "run_cppcheck.sh: FATAL: --require set but cppcheck was not found in PATH." >&2
    exit 1
  fi
  echo "run_cppcheck.sh: cppcheck not found; skipping (install cppcheck to enable)." >&2
  exit 0
fi

cd "${repo_root}"

# --error-exitcode=1 makes any unsuppressed finding fail the gate. The
# thread-annotation macros expand to clang attributes cppcheck cannot see;
# define them away instead of suppressing the resulting noise. Fixture
# trees under tests/fixtures/ hold deliberate violations — excluded.
exec cppcheck \
  --std=c++20 \
  --language=c++ \
  --enable=warning,performance,portability \
  --inline-suppr \
  --suppressions-list=.cppcheck-suppressions \
  --error-exitcode=1 \
  --quiet \
  -I . \
  -D'PSI_GUARDED_BY(x)=' \
  -D'PSI_PT_GUARDED_BY(x)=' \
  -D'PSI_EXCLUDES(x)=' \
  -D'PSI_REQUIRES(x)=' \
  -D'PSI_ACQUIRE(x)=' \
  -D'PSI_RELEASE(x)=' \
  -i tests/fixtures \
  src tools tests bench examples
