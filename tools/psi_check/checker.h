#ifndef SMARTPSI_TOOLS_PSI_CHECK_CHECKER_H_
#define SMARTPSI_TOOLS_PSI_CHECK_CHECKER_H_

// tools/psi_check — the project-contract static-analysis pass (DESIGN.md
// §15). Five rules, each enforcing a written contract that generic tools
// (clang-tidy, cppcheck) cannot see because the contracts are this repo's,
// not the language's:
//
//   layering      src/ include edges must follow the layer DAG
//                 util → graph → signature → {match, ml} → core →
//                 service → shard → fsm (tools/tests/bench sit on top).
//   determinism   result-producing layers (graph, signature, match, core,
//                 fsm) may not call rand()/time(), touch
//                 std::random_device / std::chrono::system_clock, default-
//                 construct std::mt19937, or range-iterate an
//                 unordered_{map,set} (iteration order could leak into
//                 results — Prop. 3.2 exactness and the bit-identical
//                 parallel-search contract both depend on this).
//   lock-guard    a class declaring a util::Mutex must annotate every
//                 mutable field PSI_GUARDED_BY / PSI_PT_GUARDED_BY
//                 (atomics, const, and the locks themselves are exempt).
//   fault-site    every PSI_INJECT_FAULT / PSI_FAULT_STALL hook must name
//                 a constant from src/util/fault_sites.h; every registered
//                 site must appear in DESIGN.md and in at least one test;
//                 raw site-string literals in src/ are banned.
//   metrics-pair  every uint64_t counter on MetricsSnapshot must be
//                 emitted by ToString and asserted in a test; every
//                 std::atomic<uint64_t> on MetricsRegistry must have a
//                 matching snapshot field.
//
// Any violation is suppressible only by an explicit annotation on the
// offending line (or the line above):
//
//   // psi-check: allow(<rule>) -- <reason>
//
// A malformed annotation is itself a violation (rule `waiver`).

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "tools/psi_check/lexer.h"

namespace psi::check {

struct Violation {
  std::string rule;
  std::string file;  // repo-root-relative, '/' separators
  int line = 0;
  std::string message;
  bool waived = false;
  std::string waive_reason;
};

/// One parsed source file plus its layer assignment.
struct SourceFile {
  std::string rel_path;
  std::string layer;  // "" when outside src/<layer>/
  LexedFile lexed;
};

class Checker {
 public:
  /// `root` is the repository root (must contain src/). Returns false —
  /// with a diagnostic in error() — when the tree cannot be loaded.
  bool Load(const std::filesystem::path& root);

  /// Runs every rule over the loaded tree. Call once.
  void RunAll();

  const std::vector<Violation>& violations() const { return violations_; }
  int unwaived_count() const;
  const std::string& error() const { return error_; }

  std::string TextReport() const;
  std::string JsonReport() const;

 private:
  void CheckWaiverSyntax(const SourceFile& file);
  void CheckLayering(const SourceFile& file);
  void CheckDeterminism(const SourceFile& file);
  void CheckLockGuards(const SourceFile& file);
  void CheckFaultSites();
  void CheckMetricsPairing();

  /// Records `v`, resolving waivers against the file's annotations.
  void Report(const SourceFile& file, std::string rule, int line,
              std::string message);

  const SourceFile* Find(std::string_view rel_path) const;

  std::filesystem::path root_;
  std::vector<SourceFile> files_;        // src/**/*.{h,cc}
  std::string design_text_;              // DESIGN.md (may be empty)
  std::string tests_text_;               // concatenated tests/**/*.{h,cc}
  std::vector<Violation> violations_;
  std::string error_;
};

/// Command-line entry point (argv-style, excluding argv[0]). Returns the
/// process exit code: 0 clean, 1 unwaived violations, 2 usage/load error.
/// Output goes to stdout (report) and stderr (errors).
int RunPsiCheck(const std::vector<std::string>& args);

}  // namespace psi::check

#endif  // SMARTPSI_TOOLS_PSI_CHECK_CHECKER_H_
