// psi_check — standalone project-contract static analysis for the PSI
// tree (DESIGN.md §15). No libclang, no compile database: it lexes the
// sources directly so it runs identically on every CI runner and dev
// machine. See tools/psi_check/checker.h for the rule catalogue.

#include <string>
#include <vector>

#include "tools/psi_check/checker.h"

int main(int argc, char** argv) {
  return psi::check::RunPsiCheck(
      std::vector<std::string>(argv + 1, argv + argc));
}
