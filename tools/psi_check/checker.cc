#include "tools/psi_check/checker.h"

#include <algorithm>
#include <array>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>

namespace psi::check {

namespace {

namespace fs = std::filesystem;

/// The layer DAG (DESIGN.md §15.1). A file in layer L may include headers
/// from layers of strictly lower rank or its own layer; equal-rank
/// different-layer edges (match ↔ ml) are back-edges too.
const std::map<std::string, int>& LayerRanks() {
  static const std::map<std::string, int> kRanks = {
      {"util", 0},    {"graph", 1},   {"signature", 2},
      {"match", 3},   {"ml", 3},      {"core", 4},
      {"service", 5}, {"shard", 6},   {"fsm", 7},
  };
  return kRanks;
}

/// Layers whose outputs are (or feed) query results: ordering and entropy
/// there can silently change answers, so the determinism rule binds.
bool IsResultLayer(const std::string& layer) {
  return layer == "graph" || layer == "signature" || layer == "match" ||
         layer == "core" || layer == "fsm";
}

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool IsSourceExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

/// True when any component of the root-relative path is `fixtures` —
/// psi_check's own seeded-violation fixture trees live under
/// tests/fixtures/ and must never leak into a repo scan. The check is on
/// the *relative* path so the self-tests can point --root at a tree that
/// itself lives under a fixtures/ directory.
bool InFixtureDir(const fs::path& path) {
  for (const auto& part : path) {
    if (part == "fixtures") return true;
  }
  return false;
}

bool IsWordChar(char c) {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

/// Whole-word substring search (identifier boundaries).
bool ContainsWord(const std::string& haystack, const std::string& word) {
  size_t pos = 0;
  while ((pos = haystack.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsWordChar(haystack[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end >= haystack.size() || !IsWordChar(haystack[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == Token::Kind::kIdent && t.text == text;
}
bool IsPunct(const Token& t, std::string_view text) {
  return t.kind == Token::Kind::kPunct && t.text == text;
}

bool IsGuardMacro(const std::string& name) {
  return name == "PSI_GUARDED_BY" || name == "PSI_PT_GUARDED_BY";
}
bool IsAnnotationMacro(const std::string& name) {
  // Thread-annotation attribute macros take parenthesized arguments but do
  // not make a declaration a function.
  return name.rfind("PSI_", 0) == 0;
}

/// Skips a balanced token group starting at `pos` (which must point at the
/// opener). Returns the index one past the matching closer.
size_t SkipBalanced(const std::vector<Token>& toks, size_t pos,
                    const char* open, const char* close) {
  int depth = 0;
  for (; pos < toks.size(); ++pos) {
    if (IsPunct(toks[pos], open)) ++depth;
    if (IsPunct(toks[pos], close) && --depth == 0) return pos + 1;
    if (toks[pos].kind == Token::Kind::kEnd) break;
  }
  return toks.size();
}

// ---------------------------------------------------------------------------
// Class/field model shared by the lock-guard and metrics rules.

struct FieldDecl {
  std::string name;
  int line = 0;
  std::vector<Token> type_tokens;  // declaration tokens before the name
  bool has_guard = false;          // PSI_GUARDED_BY / PSI_PT_GUARDED_BY
};

struct ClassInfo {
  std::string name;
  int line = 0;
  std::vector<FieldDecl> fields;
};

class ClassCollector {
 public:
  explicit ClassCollector(const std::vector<Token>& toks) : toks_(toks) {}

  std::vector<ClassInfo> Run() {
    for (size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (!IsIdent(toks_[i], "class") && !IsIdent(toks_[i], "struct")) {
        continue;
      }
      if (i > 0 && IsIdent(toks_[i - 1], "enum")) continue;
      i = ScanClassHead(i + 1);
    }
    return std::move(classes_);
  }

 private:
  /// Parses from just after the class/struct keyword; on a definition,
  /// parses the body. Returns the index to resume the outer scan from.
  size_t ScanClassHead(size_t pos) {
    std::string name;
    int line = pos < toks_.size() ? toks_[pos].line : 0;
    while (pos < toks_.size()) {
      const Token& t = toks_[pos];
      if (t.kind == Token::Kind::kEnd) return pos;
      if (IsPunct(t, ";")) return pos;      // forward declaration
      if (IsPunct(t, "(")) {                 // attribute macro arguments
        pos = SkipBalanced(toks_, pos, "(", ")");
        continue;
      }
      if (IsPunct(t, ":") || IsPunct(t, "{")) break;
      if (t.kind == Token::Kind::kIdent && !IsAnnotationMacro(t.text) &&
          t.text != "final" && t.text != "alignas") {
        name = t.text;
        line = t.line;
      }
      ++pos;
    }
    while (pos < toks_.size() && !IsPunct(toks_[pos], "{")) ++pos;
    if (pos >= toks_.size()) return pos;
    ClassInfo info;
    info.name = name;
    info.line = line;
    const size_t end = ParseBody(pos + 1, &info);
    classes_.push_back(std::move(info));
    return end;
  }

  /// Parses one class body starting just inside `{`, collecting member
  /// fields and recursing into nested classes. Returns the index just past
  /// the closing `}`.
  size_t ParseBody(size_t pos, ClassInfo* info) {
    while (pos < toks_.size() && toks_[pos].kind != Token::Kind::kEnd) {
      const Token& t = toks_[pos];
      if (IsPunct(t, "}")) return pos + 1;
      if (IsPunct(t, ";")) {
        ++pos;
        continue;
      }
      // Access labels.
      if ((IsIdent(t, "public") || IsIdent(t, "private") ||
           IsIdent(t, "protected")) &&
          pos + 1 < toks_.size() && IsPunct(toks_[pos + 1], ":")) {
        pos += 2;
        continue;
      }
      pos = ParseMemberStatement(pos, info);
    }
    return pos;
  }

  size_t ParseMemberStatement(size_t pos, ClassInfo* info) {
    std::vector<Token> stmt;
    bool has_fn_parens = false;
    bool has_guard = false;
    bool skip_decl = false;  // using/typedef/friend/static/template/enum
    while (pos < toks_.size() && toks_[pos].kind != Token::Kind::kEnd) {
      const Token& t = toks_[pos];
      if (IsPunct(t, ";")) {
        ++pos;
        break;
      }
      if (IsPunct(t, "}")) return pos;  // class body closer; no semicolon
      if (stmt.empty() && t.kind == Token::Kind::kIdent &&
          (t.text == "using" || t.text == "typedef" || t.text == "friend" ||
           t.text == "static" || t.text == "template" || t.text == "enum")) {
        skip_decl = true;
      }
      // `T& operator=(...) = delete;` short-circuits at the `=` before its
      // parens are seen — never a field.
      if (IsIdent(t, "operator")) skip_decl = true;
      if ((IsIdent(t, "class") || IsIdent(t, "struct")) &&
          !(pos > 0 && IsIdent(toks_[pos - 1], "enum"))) {
        // Nested type definition: collect it as its own class, then keep
        // consuming this statement (there may be declarators after `}`).
        pos = ScanClassHeadNested(pos + 1);
        skip_decl = true;  // the nested type itself is not a field
        continue;
      }
      if (IsPunct(t, "(")) {
        const size_t after = SkipBalanced(toks_, pos, "(", ")");
        if (!stmt.empty() && stmt.back().kind == Token::Kind::kIdent &&
            IsAnnotationMacro(stmt.back().text)) {
          if (IsGuardMacro(stmt.back().text)) has_guard = true;
          stmt.pop_back();  // drop the macro name; its args are skipped
        } else {
          has_fn_parens = true;
        }
        pos = after;
        continue;
      }
      if (IsPunct(t, "{")) {
        if (has_fn_parens || stmt.empty()) {
          // Function body (or stray block): skip it; a definition needs no
          // trailing semicolon.
          pos = SkipBalanced(toks_, pos, "{", "}");
          if (pos < toks_.size() && IsPunct(toks_[pos], ";")) ++pos;
          return pos;
        }
        // Brace initializer on a field: skip its contents.
        pos = SkipBalanced(toks_, pos, "{", "}");
        continue;
      }
      if (IsPunct(t, "=")) {
        // Initializer (or `= default` — but those follow parens and exit
        // above at the `;`). Stop collecting declaration tokens.
        ++pos;
        while (pos < toks_.size() && !IsPunct(toks_[pos], ";") &&
               !IsPunct(toks_[pos], "}") &&
               toks_[pos].kind != Token::Kind::kEnd) {
          if (IsPunct(toks_[pos], "{")) {
            pos = SkipBalanced(toks_, pos, "{", "}");
            continue;
          }
          ++pos;
        }
        continue;
      }
      stmt.push_back(t);
      ++pos;
    }
    if (skip_decl || has_fn_parens || stmt.empty()) return pos;
    // Field declaration: the name is the last identifier.
    size_t name_idx = stmt.size();
    for (size_t i = stmt.size(); i-- > 0;) {
      if (stmt[i].kind == Token::Kind::kIdent) {
        name_idx = i;
        break;
      }
    }
    if (name_idx == stmt.size()) return pos;
    FieldDecl field;
    field.name = stmt[name_idx].text;
    field.line = stmt[name_idx].line;
    field.has_guard = has_guard;
    field.type_tokens.assign(stmt.begin(), stmt.begin() + name_idx);
    info->fields.push_back(std::move(field));
    return pos;
  }

  /// Like ScanClassHead but appends to classes_ from a nested context.
  size_t ScanClassHeadNested(size_t pos) { return ScanClassHead(pos); }

  const std::vector<Token>& toks_;
  std::vector<ClassInfo> classes_;
};

/// True when the declaration tokens declare a by-value util::Mutex (a
/// `Mutex&` / `Mutex*` member is a reference to someone else's lock).
bool DeclaresMutexByValue(const FieldDecl& field) {
  for (size_t i = 0; i < field.type_tokens.size(); ++i) {
    if (!IsIdent(field.type_tokens[i], "Mutex")) continue;
    const bool next_is_indirect =
        i + 1 < field.type_tokens.size() &&
        (IsPunct(field.type_tokens[i + 1], "&") ||
         IsPunct(field.type_tokens[i + 1], "*"));
    if (!next_is_indirect) return true;
  }
  return false;
}

bool TypeMentions(const FieldDecl& field, std::string_view ident) {
  for (const Token& t : field.type_tokens) {
    if (IsIdent(t, ident)) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Loading

bool Checker::Load(const fs::path& root) {
  root_ = root;
  std::error_code ec;
  if (!fs::is_directory(root_ / "src", ec)) {
    error_ = "no src/ directory under root: " + root_.string();
    return false;
  }
  std::vector<fs::path> paths;
  for (auto it = fs::recursive_directory_iterator(root_ / "src", ec);
       it != fs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file()) continue;
    if (InFixtureDir(fs::relative(it->path(), root_)) ||
        !IsSourceExtension(it->path())) {
      continue;
    }
    paths.push_back(it->path());
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& path : paths) {
    std::string content;
    if (!ReadFile(path, &content)) {
      error_ = "unreadable file: " + path.string();
      return false;
    }
    SourceFile file;
    file.rel_path = fs::relative(path, root_).generic_string();
    // Layer = the directory directly under src/.
    const fs::path rel = fs::relative(path, root_ / "src");
    const std::string first = rel.begin()->generic_string();
    if (LayerRanks().count(first) != 0) file.layer = first;
    file.lexed = Lex(content);
    files_.push_back(std::move(file));
  }
  ReadFile(root_ / "DESIGN.md", &design_text_);
  if (fs::is_directory(root_ / "tests", ec)) {
    std::vector<fs::path> test_paths;
    for (auto it = fs::recursive_directory_iterator(root_ / "tests", ec);
         it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file()) continue;
      if (InFixtureDir(fs::relative(it->path(), root_)) ||
          !IsSourceExtension(it->path())) {
        continue;
      }
      test_paths.push_back(it->path());
    }
    std::sort(test_paths.begin(), test_paths.end());
    for (const fs::path& path : test_paths) {
      std::string content;
      if (ReadFile(path, &content)) {
        tests_text_ += content;
        tests_text_ += '\n';
      }
    }
  }
  return true;
}

const SourceFile* Checker::Find(std::string_view rel_path) const {
  for (const SourceFile& f : files_) {
    if (f.rel_path == rel_path) return &f;
  }
  return nullptr;
}

void Checker::Report(const SourceFile& file, std::string rule, int line,
                     std::string message) {
  Violation v;
  v.rule = std::move(rule);
  v.file = file.rel_path;
  v.line = line;
  v.message = std::move(message);
  for (const Waiver& w : file.lexed.waivers) {
    if (w.malformed) continue;
    if (w.line != line && w.line != line - 1) continue;
    if (std::find(w.rules.begin(), w.rules.end(), v.rule) == w.rules.end()) {
      continue;
    }
    v.waived = true;
    v.waive_reason = w.reason;
    break;
  }
  violations_.push_back(std::move(v));
}

// ---------------------------------------------------------------------------
// Rules

void Checker::CheckWaiverSyntax(const SourceFile& file) {
  for (const Waiver& w : file.lexed.waivers) {
    if (!w.malformed) continue;
    Violation v;
    v.rule = "waiver";
    v.file = file.rel_path;
    v.line = w.line;
    v.message = "malformed psi-check annotation: " + w.error;
    violations_.push_back(std::move(v));  // never waivable
  }
}

void Checker::CheckLayering(const SourceFile& file) {
  if (file.layer.empty()) return;
  const int my_rank = LayerRanks().at(file.layer);
  for (const IncludeDirective& inc : file.lexed.includes) {
    if (inc.system) continue;
    const size_t slash = inc.path.find('/');
    if (slash == std::string::npos) continue;
    const std::string target = inc.path.substr(0, slash);
    const auto it = LayerRanks().find(target);
    if (it == LayerRanks().end()) continue;  // not a layer-qualified path
    if (target == file.layer) continue;
    if (it->second >= my_rank) {
      Report(file, "layering", inc.line,
             "layer '" + file.layer + "' must not include '" + inc.path +
                 "' (layer '" + target +
                 "' is not below it in the DAG util -> graph -> signature "
                 "-> {match, ml} -> core -> service -> shard -> fsm)");
    }
  }
}

void Checker::CheckDeterminism(const SourceFile& file) {
  if (!IsResultLayer(file.layer)) return;
  const std::vector<Token>& toks = file.lexed.tokens;

  // Pass 1: identifiers declared with an unordered container type.
  std::set<std::string> unordered_vars;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent ||
        toks[i].text.rfind("unordered_", 0) != 0) {
      continue;
    }
    size_t j = i + 1;
    if (j < toks.size() && IsPunct(toks[j], "<")) {
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (IsPunct(toks[j], "<")) ++depth;
        if (IsPunct(toks[j], ">") && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    // `unordered_map<...> name` — possibly through `> >` or `>&` noise.
    while (j < toks.size() &&
           (IsPunct(toks[j], "&") || IsPunct(toks[j], "*"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == Token::Kind::kIdent) {
      unordered_vars.insert(toks[j].text);
    }
  }

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;
    const bool next_is_call =
        i + 1 < toks.size() && IsPunct(toks[i + 1], "(");
    const bool member_access =
        i > 0 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], ">"));
    if ((t.text == "rand" || t.text == "srand") && next_is_call &&
        !member_access) {
      Report(file, "determinism", t.line,
             "call to " + t.text + "() in result layer '" + file.layer +
                 "' — use a seeded util::Rng");
    } else if (t.text == "random_device") {
      Report(file, "determinism", t.line,
             "std::random_device in result layer '" + file.layer +
                 "' — all entropy must come from explicit seeds");
    } else if (t.text == "system_clock") {
      Report(file, "determinism", t.line,
             "wall-clock (system_clock) in result layer '" + file.layer +
                 "' — steady_clock durations only");
    } else if (t.text == "time" && next_is_call && !member_access) {
      Report(file, "determinism", t.line,
             "call to time() in result layer '" + file.layer +
                 "' — wall-clock reads are banned");
    } else if (t.text == "mt19937" || t.text == "mt19937_64") {
      // Flag default-constructed (unseeded) engines only.
      size_t j = i + 1;
      if (j < toks.size() && toks[j].kind == Token::Kind::kIdent) ++j;
      bool unseeded = false;
      if (j < toks.size() && IsPunct(toks[j], ";")) unseeded = true;
      if (j < toks.size() &&
          (IsPunct(toks[j], "(") || IsPunct(toks[j], "{"))) {
        const char* close = IsPunct(toks[j], "(") ? ")" : "}";
        unseeded = j + 1 < toks.size() && IsPunct(toks[j + 1], close);
      }
      if (unseeded) {
        Report(file, "determinism", t.line,
               "unseeded std::" + t.text + " in result layer '" +
                   file.layer + "' — seed explicitly or use util::Rng");
      }
    } else if (t.text == "for" && next_is_call) {
      // Range-for over an unordered container leaks hash-order.
      const size_t close = SkipBalanced(toks, i + 1, "(", ")");
      size_t colon = 0;
      int depth = 0;
      for (size_t j = i + 1; j < close; ++j) {
        if (IsPunct(toks[j], "(")) ++depth;
        if (IsPunct(toks[j], ")")) --depth;
        if (depth == 1 && IsPunct(toks[j], ":")) {
          colon = j;
          break;
        }
      }
      if (colon == 0) continue;
      for (size_t j = colon + 1; j + 1 < close; ++j) {
        if (toks[j].kind != Token::Kind::kIdent) continue;
        if (unordered_vars.count(toks[j].text) != 0 ||
            toks[j].text.rfind("unordered_", 0) == 0) {
          Report(file, "determinism", toks[j].line,
                 "range-iteration over unordered container '" +
                     toks[j].text + "' in result layer '" + file.layer +
                     "' — hash order can leak into results; iterate a "
                     "sorted copy or an index range");
          break;
        }
      }
    }
  }
}

void Checker::CheckLockGuards(const SourceFile& file) {
  const std::vector<ClassInfo> classes =
      ClassCollector(file.lexed.tokens).Run();
  for (const ClassInfo& cls : classes) {
    bool has_mutex = false;
    for (const FieldDecl& f : cls.fields) {
      if (DeclaresMutexByValue(f)) {
        has_mutex = true;
        break;
      }
    }
    if (!has_mutex) continue;
    for (const FieldDecl& f : cls.fields) {
      if (f.has_guard) continue;
      if (DeclaresMutexByValue(f) || TypeMentions(f, "Mutex") ||
          TypeMentions(f, "CondVar") || TypeMentions(f, "mutex") ||
          TypeMentions(f, "condition_variable")) {
        continue;  // the locks themselves
      }
      if (TypeMentions(f, "atomic")) continue;  // internally synchronized
      if (TypeMentions(f, "const") || TypeMentions(f, "constexpr")) continue;
      Report(file, "lock-guard", f.line,
             "field '" + f.name + "' of lock-owning class '" + cls.name +
                 "' is neither PSI_GUARDED_BY/PSI_PT_GUARDED_BY, atomic, "
                 "const, nor waived");
    }
  }
}

void Checker::CheckFaultSites() {
  static constexpr char kRegistryPath[] = "src/util/fault_sites.h";
  const SourceFile* registry = Find(kRegistryPath);
  if (registry == nullptr) {
    Violation v;
    v.rule = "fault-site";
    v.file = kRegistryPath;
    v.line = 0;
    v.message = "fault-site registry header is missing";
    violations_.push_back(std::move(v));
    return;
  }
  // Registry entries: `inline constexpr char kName[] = "value";`
  struct Entry {
    std::string name;
    std::string value;
    int line;
  };
  std::vector<Entry> entries;
  const std::vector<Token>& rtoks = registry->lexed.tokens;
  for (size_t i = 0; i + 5 < rtoks.size(); ++i) {
    if (!IsIdent(rtoks[i], "char")) continue;
    if (rtoks[i + 1].kind != Token::Kind::kIdent) continue;
    if (!IsPunct(rtoks[i + 2], "[") || !IsPunct(rtoks[i + 3], "]")) continue;
    if (!IsPunct(rtoks[i + 4], "=")) continue;
    if (rtoks[i + 5].kind != Token::Kind::kString) continue;
    entries.push_back(
        Entry{rtoks[i + 1].text, rtoks[i + 5].text, rtoks[i + 1].line});
  }
  std::set<std::string> entry_names;
  std::set<std::string> entry_values;
  for (const Entry& e : entries) {
    entry_names.insert(e.name);
    entry_values.insert(e.value);
  }

  std::set<std::string> used_names;
  for (const SourceFile& file : files_) {
    if (file.rel_path == kRegistryPath) continue;
    const std::vector<Token>& toks = file.lexed.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      // Hook call sites must name a registered constant.
      if ((IsIdent(toks[i], "PSI_INJECT_FAULT") ||
           IsIdent(toks[i], "PSI_FAULT_STALL")) &&
          i + 1 < toks.size() && IsPunct(toks[i + 1], "(")) {
        const size_t close = SkipBalanced(toks, i + 1, "(", ")");
        std::string last_ident;
        bool has_string = false;
        for (size_t j = i + 2; j + 1 < close; ++j) {
          if (toks[j].kind == Token::Kind::kIdent) last_ident = toks[j].text;
          if (toks[j].kind == Token::Kind::kString) has_string = true;
        }
        if (has_string) {
          Report(file, "fault-site", toks[i].line,
                 "injection hook uses a raw string literal — name a "
                 "constant from util/fault_sites.h");
        } else if (entry_names.count(last_ident) == 0) {
          Report(file, "fault-site", toks[i].line,
                 "injection hook site '" + last_ident +
                     "' is not declared in util/fault_sites.h");
        } else {
          used_names.insert(last_ident);
        }
        i = close - 1;
        continue;
      }
      // Raw literals that shadow a registered site string.
      if (toks[i].kind == Token::Kind::kString &&
          entry_values.count(toks[i].text) != 0) {
        Report(file, "fault-site", toks[i].line,
               "raw site string \"" + toks[i].text +
                   "\" duplicates a registry entry — use the "
                   "util::faults constant");
      }
    }
  }

  for (const Entry& e : entries) {
    if (design_text_.find(e.value) == std::string::npos) {
      Report(*registry, "fault-site", e.line,
             "site \"" + e.value +
                 "\" is not documented in the DESIGN.md site table");
    }
    if (tests_text_.find(e.value) == std::string::npos &&
        !ContainsWord(tests_text_, e.name)) {
      Report(*registry, "fault-site", e.line,
             "site \"" + e.value + "\" (" + e.name +
                 ") is not exercised by any test under tests/");
    }
    if (used_names.count(e.name) == 0) {
      Report(*registry, "fault-site", e.line,
             "registered site '" + e.name +
                 "' has no PSI_INJECT_FAULT/PSI_FAULT_STALL hook in src/");
    }
  }
}

void Checker::CheckMetricsPairing() {
  const SourceFile* header = Find("src/service/metrics.h");
  const SourceFile* source = Find("src/service/metrics.cc");
  if (header == nullptr) return;  // repo (or fixture tree) has no metrics
  const std::vector<ClassInfo> classes =
      ClassCollector(header->lexed.tokens).Run();
  const ClassInfo* snapshot = nullptr;
  const ClassInfo* registry = nullptr;
  for (const ClassInfo& c : classes) {
    if (c.name == "MetricsSnapshot") snapshot = &c;
    if (c.name == "MetricsRegistry") registry = &c;
  }
  if (snapshot == nullptr) return;

  std::vector<const FieldDecl*> counters;
  std::set<std::string> counter_names;
  for (const FieldDecl& f : snapshot->fields) {
    if (!f.type_tokens.empty() && IsIdent(f.type_tokens[0], "uint64_t")) {
      counters.push_back(&f);
      counter_names.insert(f.name);
    }
  }

  // ToString body tokens (from metrics.cc).
  std::set<std::string> tostring_idents;
  bool found_tostring = false;
  if (source != nullptr) {
    const std::vector<Token>& toks = source->lexed.tokens;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!IsIdent(toks[i], "ToString")) continue;
      size_t j = i;
      while (j < toks.size() && !IsPunct(toks[j], "{") &&
             !IsPunct(toks[j], ";")) {
        ++j;
      }
      if (j >= toks.size() || !IsPunct(toks[j], "{")) continue;
      const size_t close = SkipBalanced(toks, j, "{", "}");
      for (size_t k = j; k < close; ++k) {
        if (toks[k].kind == Token::Kind::kIdent) {
          tostring_idents.insert(toks[k].text);
        }
      }
      found_tostring = true;
      break;
    }
  }

  for (const FieldDecl* f : counters) {
    if (found_tostring && tostring_idents.count(f->name) == 0) {
      Report(*header, "metrics-pair", f->line,
             "counter '" + f->name +
                 "' is not emitted by MetricsSnapshot::ToString");
    }
    if (!ContainsWord(tests_text_, f->name)) {
      Report(*header, "metrics-pair", f->line,
             "counter '" + f->name + "' is not asserted in any test");
    }
  }

  if (registry != nullptr) {
    for (const FieldDecl& f : registry->fields) {
      if (!TypeMentions(f, "atomic") || !TypeMentions(f, "uint64_t")) {
        continue;
      }
      std::string base = f.name;
      if (!base.empty() && base.back() == '_') base.pop_back();
      if (counter_names.count(base) == 0) {
        Report(*header, "metrics-pair", f.line,
               "registry counter '" + f.name +
                   "' has no matching MetricsSnapshot field '" + base + "'");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Driving & reporting

void Checker::RunAll() {
  for (const SourceFile& file : files_) {
    CheckWaiverSyntax(file);
    CheckLayering(file);
    CheckDeterminism(file);
    CheckLockGuards(file);
  }
  CheckFaultSites();
  CheckMetricsPairing();
  std::stable_sort(violations_.begin(), violations_.end(),
                   [](const Violation& a, const Violation& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
}

int Checker::unwaived_count() const {
  int n = 0;
  for (const Violation& v : violations_) {
    if (!v.waived) ++n;
  }
  return n;
}

std::string Checker::TextReport() const {
  std::ostringstream out;
  for (const Violation& v : violations_) {
    out << v.file << ':' << v.line << ": [" << v.rule << "] " << v.message;
    if (v.waived) out << "  (waived: " << v.waive_reason << ")";
    out << '\n';
  }
  const int unwaived = unwaived_count();
  out << "psi_check: " << files_.size() << " files, " << violations_.size()
      << " finding(s), " << unwaived << " unwaived\n";
  return out.str();
}

std::string Checker::JsonReport() const {
  std::ostringstream out;
  out << "{\n  \"files_scanned\": " << files_.size()
      << ",\n  \"unwaived\": " << unwaived_count()
      << ",\n  \"violations\": [";
  for (size_t i = 0; i < violations_.size(); ++i) {
    const Violation& v = violations_[i];
    out << (i == 0 ? "\n" : ",\n")
        << "    {\"rule\": \"" << JsonEscape(v.rule) << "\", \"file\": \""
        << JsonEscape(v.file) << "\", \"line\": " << v.line
        << ", \"waived\": " << (v.waived ? "true" : "false")
        << ", \"message\": \"" << JsonEscape(v.message) << "\"";
    if (v.waived) {
      out << ", \"reason\": \"" << JsonEscape(v.waive_reason) << "\"";
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

int RunPsiCheck(const std::vector<std::string>& args) {
  fs::path root = ".";
  bool json = false;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--root") {
      if (i + 1 >= args.size()) {
        std::cerr << "psi_check: --root requires a directory argument\n";
        return 2;
      }
      root = args[++i];
    } else if (a == "--json") {
      json = true;
    } else if (a == "--help" || a == "-h") {
      std::cout
          << "usage: psi_check [--root DIR] [--json]\n\n"
             "Project-contract static analysis (DESIGN.md §15): layering,\n"
             "determinism, lock-guard, fault-site and metrics-pair rules\n"
             "over DIR/src, cross-referenced against DIR/DESIGN.md and\n"
             "DIR/tests. Exit 0 = clean, 1 = unwaived violations,\n"
             "2 = usage or unreadable tree.\n";
      return 0;
    } else {
      std::cerr << "psi_check: unknown argument '" << a
                << "' (try --help)\n";
      return 2;
    }
  }
  Checker checker;
  if (!checker.Load(root)) {
    std::cerr << "psi_check: " << checker.error() << '\n';
    return 2;
  }
  checker.RunAll();
  std::cout << (json ? checker.JsonReport() : checker.TextReport());
  return checker.unwaived_count() == 0 ? 0 : 1;
}

}  // namespace psi::check
