#ifndef SMARTPSI_TOOLS_PSI_CHECK_LEXER_H_
#define SMARTPSI_TOOLS_PSI_CHECK_LEXER_H_

// Minimal C++ lexer for tools/psi_check (DESIGN.md §15). Deliberately not
// a compiler front end: it produces the token stream the contract rules
// need (identifiers, string literals, punctuation with `::` fused, line
// numbers), records `#include "..."` directives, and parses
// `// psi-check: allow(<rule>) -- <reason>` waiver annotations out of
// comments. Everything else the preprocessor would do (macro expansion,
// conditionals) is intentionally skipped so the tool has zero dependency
// on libclang and sees the source exactly as reviewers do.

#include <string>
#include <vector>

namespace psi::check {

struct Token {
  enum class Kind { kIdent, kNumber, kString, kPunct, kEnd };
  Kind kind = Kind::kEnd;
  /// Identifier/number spelling, string literal *contents* (no quotes,
  /// escapes left as written), or punctuation text (`::` is one token).
  std::string text;
  int line = 0;
};

/// One `#include "..."` directive (angle-bracket includes are recorded with
/// `system = true` so rules can ignore them).
struct IncludeDirective {
  std::string path;
  int line = 0;
  bool system = false;
};

/// One `// psi-check: allow(rule[,rule...]) -- reason` annotation. A
/// malformed annotation (unknown shape, missing reason) is surfaced via
/// `malformed` so the checker can reject it loudly instead of silently
/// ignoring a typo'd waiver.
struct Waiver {
  int line = 0;
  std::vector<std::string> rules;
  std::string reason;
  bool malformed = false;
  std::string error;  // set when malformed
};

/// A lexed source file. `tokens` always ends with a kEnd sentinel.
struct LexedFile {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::vector<Waiver> waivers;
};

/// Lexes `content` (the bytes of one source file). Never fails: unexpected
/// bytes become single-character punctuation tokens.
LexedFile Lex(const std::string& content);

}  // namespace psi::check

#endif  // SMARTPSI_TOOLS_PSI_CHECK_LEXER_H_
