#include "tools/psi_check/lexer.h"

#include <cctype>
#include <cstddef>

namespace psi::check {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

/// Parses the annotation payload after "psi-check:". Grammar:
///   allow(rule[,rule...]) -- reason
void ParseWaiver(std::string_view body, int line, std::vector<Waiver>* out) {
  Waiver w;
  w.line = line;
  const std::string text = Trim(body);
  auto fail = [&](std::string error) {
    w.malformed = true;
    w.error = std::move(error);
    out->push_back(std::move(w));
  };
  if (text.rfind("allow(", 0) != 0) {
    return fail("expected 'allow(<rule>) -- <reason>' after 'psi-check:'");
  }
  const size_t close = text.find(')');
  if (close == std::string::npos) {
    return fail("unterminated allow(...) rule list");
  }
  std::string_view rules(text);
  rules = rules.substr(6, close - 6);
  size_t pos = 0;
  while (pos <= rules.size()) {
    const size_t comma = rules.find(',', pos);
    const std::string rule = Trim(
        rules.substr(pos, comma == std::string_view::npos ? rules.size() - pos
                                                          : comma - pos));
    if (rule.empty()) return fail("empty rule name in allow(...)");
    w.rules.push_back(rule);
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  std::string rest = Trim(std::string_view(text).substr(close + 1));
  if (rest.rfind("--", 0) != 0) {
    return fail("waiver missing ' -- <reason>' justification");
  }
  w.reason = Trim(std::string_view(rest).substr(2));
  if (w.reason.empty()) {
    return fail("waiver reason after '--' must be non-empty");
  }
  out->push_back(std::move(w));
}

/// Scans a comment body (without the // or /* */ delimiters) for psi-check
/// annotations. `line` is the line the comment starts on; embedded
/// newlines inside block comments advance it.
void ScanComment(std::string_view body, int line, std::vector<Waiver>* out) {
  size_t search = 0;
  int current_line = line;
  size_t last_newline_scan = 0;
  while (true) {
    const size_t at = body.find("psi-check:", search);
    if (at == std::string_view::npos) return;
    for (size_t i = last_newline_scan; i < at; ++i) {
      if (body[i] == '\n') ++current_line;
    }
    last_newline_scan = at;
    size_t end = body.find('\n', at);
    if (end == std::string_view::npos) end = body.size();
    ParseWaiver(body.substr(at + 10, end - at - 10), current_line, out);
    search = end;
  }
}

class Lexer {
 public:
  explicit Lexer(const std::string& content) : src_(content) {}

  LexedFile Run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        LexPreprocessor();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '"') {
        LexString();
        continue;
      }
      if (c == '\'') {
        LexChar();
        continue;
      }
      if (c == 'R' && Peek(1) == '"') {
        LexRawString();
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdent();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        LexNumber();
        continue;
      }
      LexPunct();
    }
    Emit(Token::Kind::kEnd, "");
    return std::move(result_);
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Emit(Token::Kind kind, std::string text) {
    result_.tokens.push_back(Token{kind, std::move(text), line_});
  }

  /// Consumes a whole preprocessor directive (including backslash
  /// continuations), recording #include "..." / <...> directives. Macro
  /// bodies are invisible to the rules by design: contract checks fire on
  /// call sites, not definitions.
  void LexPreprocessor() {
    const int start_line = line_;
    size_t p = pos_ + 1;
    while (p < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[p])) != 0 &&
           src_[p] != '\n') {
      ++p;
    }
    size_t word_end = p;
    while (word_end < src_.size() && IsIdentChar(src_[word_end])) ++word_end;
    const std::string_view directive(src_.data() + p, word_end - p);
    if (directive == "include") {
      size_t q = word_end;
      while (q < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[q])) != 0 &&
             src_[q] != '\n') {
        ++q;
      }
      if (q < src_.size() && (src_[q] == '"' || src_[q] == '<')) {
        const char close = src_[q] == '"' ? '"' : '>';
        const size_t end = src_.find(close, q + 1);
        if (end != std::string::npos) {
          result_.includes.push_back(IncludeDirective{
              src_.substr(q + 1, end - q - 1), start_line, close == '>'});
        }
      }
    }
    // Consume to the end of the (possibly continued) directive.
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && Peek(1) == '\n') {
        pos_ += 2;
        ++line_;
        continue;
      }
      if (src_[pos_] == '\n') break;  // newline handled by Run()
      // Line comments end a directive's interesting part but may hold a
      // waiver; block comments inside directives are rare — skip simply.
      if (src_[pos_] == '/' && Peek(1) == '/') {
        LexLineComment();
        return;
      }
      ++pos_;
    }
  }

  void LexLineComment() {
    size_t end = src_.find('\n', pos_);
    if (end == std::string::npos) end = src_.size();
    ScanComment(std::string_view(src_).substr(pos_ + 2, end - pos_ - 2),
                line_, &result_.waivers);
    pos_ = end;
  }

  void LexBlockComment() {
    const size_t end = src_.find("*/", pos_ + 2);
    const size_t stop = end == std::string::npos ? src_.size() : end;
    const std::string_view body =
        std::string_view(src_).substr(pos_ + 2, stop - pos_ - 2);
    ScanComment(body, line_, &result_.waivers);
    for (char c : body) {
      if (c == '\n') ++line_;
    }
    pos_ = end == std::string::npos ? src_.size() : end + 2;
  }

  void LexString() {
    const int start_line = line_;
    std::string value;
    ++pos_;  // opening quote
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        value.push_back(src_[pos_]);
        value.push_back(src_[pos_ + 1]);
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') ++line_;  // unterminated; keep line count sane
      value.push_back(src_[pos_]);
      ++pos_;
    }
    if (pos_ < src_.size()) ++pos_;  // closing quote
    result_.tokens.push_back(Token{Token::Kind::kString, std::move(value),
                                   start_line});
  }

  void LexChar() {
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ < src_.size()) ++pos_;
  }

  void LexRawString() {
    // R"delim( ... )delim"
    const size_t open = src_.find('(', pos_ + 2);
    if (open == std::string::npos) {
      pos_ = src_.size();
      return;
    }
    const std::string delim = src_.substr(pos_ + 2, open - pos_ - 2);
    const std::string closer = ")" + delim + "\"";
    const size_t end = src_.find(closer, open + 1);
    const size_t stop = end == std::string::npos ? src_.size() : end;
    const int start_line = line_;
    for (size_t i = pos_; i < stop; ++i) {
      if (src_[i] == '\n') ++line_;
    }
    result_.tokens.push_back(Token{
        Token::Kind::kString, src_.substr(open + 1, stop - open - 1),
        start_line});
    pos_ = end == std::string::npos ? src_.size() : end + closer.size();
  }

  void LexIdent() {
    size_t end = pos_;
    while (end < src_.size() && IsIdentChar(src_[end])) ++end;
    Emit(Token::Kind::kIdent, src_.substr(pos_, end - pos_));
    pos_ = end;
  }

  void LexNumber() {
    size_t end = pos_;
    while (end < src_.size() &&
           (IsIdentChar(src_[end]) || src_[end] == '.' ||
            ((src_[end] == '+' || src_[end] == '-') && end > pos_ &&
             (src_[end - 1] == 'e' || src_[end - 1] == 'E' ||
              src_[end - 1] == 'p' || src_[end - 1] == 'P')))) {
    ++end;
    }
    Emit(Token::Kind::kNumber, src_.substr(pos_, end - pos_));
    pos_ = end;
  }

  void LexPunct() {
    if (src_[pos_] == ':' && Peek(1) == ':') {
      Emit(Token::Kind::kPunct, "::");
      pos_ += 2;
      return;
    }
    Emit(Token::Kind::kPunct, std::string(1, src_[pos_]));
    ++pos_;
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  LexedFile result_;
};

}  // namespace

LexedFile Lex(const std::string& content) { return Lexer(content).Run(); }

}  // namespace psi::check
