// psi_generate — emit synthetic labeled graphs (and optional query
// workloads) in .lg format, either from the paper's dataset stand-ins or
// from the raw generators.
//
//   psi_generate --out g.lg --dataset human --scale 0.5 --seed 7
//   psi_generate --out g.lg --generator chunglu --nodes 100000
//       --edges 800000 --labels 25 --power 2.1 --homophily 0.4
//   psi_generate --out g.lg --dataset cora
//       --queries-out q.lg --query-size 6 --query-count 100

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/query_extractor.h"
#include "tools/tool_args.h"

namespace {

using namespace psi;

void Usage() {
  std::cerr <<
      "Usage: psi_generate --out FILE (--dataset NAME | --generator KIND)\n"
      "  --dataset NAME     yeast|cora|human|youtube|twitter|weibo\n"
      "  --scale X          dataset scale in (0,1], default 1.0\n"
      "  --generator KIND   er|ba|chunglu|rmat\n"
      "  --nodes N --edges M --labels L (generator mode)\n"
      "  --label-skew Z     Zipf exponent for node labels (default 0.8)\n"
      "  --edge-labels E    distinct edge labels (default 1)\n"
      "  --power B          Chung-Lu power-law exponent (default 2.1)\n"
      "  --ba-degree D      Barabasi-Albert edges per node (default 3)\n"
      "  --homophily H      label homophily in [0,1] (default 0)\n"
      "  --seed S           RNG seed (default 42)\n"
      "  --queries-out FILE also extract a query workload\n"
      "  --query-size N     nodes per query (default 5)\n"
      "  --query-count K    number of queries (default 100)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const tools::ArgSpec spec{
      /*switches=*/{},
      /*options=*/{"--out", "--dataset", "--scale", "--generator", "--nodes",
                   "--edges", "--labels", "--label-skew", "--edge-labels",
                   "--power", "--ba-degree", "--homophily", "--seed",
                   "--queries-out", "--query-size", "--query-count"},
      /*max_positional=*/0};
  const tools::ParsedArgs args = tools::ParseArgs(argc, argv, spec);
  if (!args.ok()) {
    std::cerr << "psi_generate: " << args.error << "\n";
    Usage();
    return 2;
  }
  auto get = [&](const std::string& key, const std::string& fallback) {
    return args.Get(key, fallback);
  };
  const std::string out = get("--out", "");
  if (out.empty()) {
    Usage();
    return 2;
  }
  const uint64_t seed = std::strtoull(get("--seed", "42").c_str(), nullptr, 10);

  graph::Graph g;
  if (args.Has("--dataset")) {
    const std::string name = get("--dataset", "");
    const std::map<std::string, graph::Dataset> datasets = {
        {"yeast", graph::Dataset::kYeast},
        {"cora", graph::Dataset::kCora},
        {"human", graph::Dataset::kHuman},
        {"youtube", graph::Dataset::kYouTube},
        {"twitter", graph::Dataset::kTwitter},
        {"weibo", graph::Dataset::kWeibo}};
    const auto it = datasets.find(name);
    if (it == datasets.end()) {
      std::cerr << "unknown dataset: " << name << "\n";
      return 2;
    }
    const double scale = std::atof(get("--scale", "1.0").c_str());
    g = graph::MakeDataset(it->second, scale, seed);
  } else if (args.Has("--generator")) {
    const std::string kind = get("--generator", "");
    const size_t nodes = std::strtoull(get("--nodes", "1000").c_str(),
                                       nullptr, 10);
    const size_t edges = std::strtoull(get("--edges", "5000").c_str(),
                                       nullptr, 10);
    graph::LabelConfig labels;
    labels.num_labels = std::strtoull(get("--labels", "8").c_str(),
                                      nullptr, 10);
    labels.zipf_exponent = std::atof(get("--label-skew", "0.8").c_str());
    labels.num_edge_labels =
        std::strtoull(get("--edge-labels", "1").c_str(), nullptr, 10);
    util::Rng rng(seed);
    if (kind == "er") {
      g = graph::ErdosRenyi(nodes, edges, labels, rng);
    } else if (kind == "ba") {
      const size_t per_node =
          std::strtoull(get("--ba-degree", "3").c_str(), nullptr, 10);
      g = graph::BarabasiAlbert(nodes, per_node, labels, rng);
    } else if (kind == "chunglu") {
      const double power = std::atof(get("--power", "2.1").c_str());
      g = graph::ChungLuPowerLaw(nodes, edges, power, labels, rng);
    } else if (kind == "rmat") {
      size_t scale_bits = 0;
      while ((size_t{1} << scale_bits) < nodes) ++scale_bits;
      g = graph::Rmat(scale_bits, edges, 0.57, 0.19, 0.19, labels, rng);
    } else {
      std::cerr << "unknown generator: " << kind << "\n";
      return 2;
    }
    const double homophily = std::atof(get("--homophily", "0").c_str());
    if (homophily > 0.0) {
      g = graph::RelabelWithHomophily(g, homophily, 2, rng);
    }
  } else {
    Usage();
    return 2;
  }

  const auto status = graph::SaveLgFile(g, out);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  std::cout << "Wrote " << out << ": " << g.num_nodes() << " nodes, "
            << g.num_edges() << " edges, " << g.num_labels() << " labels\n";

  const std::string queries_out = get("--queries-out", "");
  if (!queries_out.empty()) {
    const size_t size = std::strtoull(get("--query-size", "5").c_str(),
                                      nullptr, 10);
    const size_t count = std::strtoull(get("--query-count", "100").c_str(),
                                       nullptr, 10);
    graph::QueryExtractor extractor(g);
    util::Rng qrng(seed ^ 0xBEEF);
    const auto queries = extractor.ExtractMany(size, count, qrng);
    const auto qstatus = graph::SaveQueryFile(queries, queries_out);
    if (!qstatus.ok()) {
      std::cerr << qstatus.ToString() << "\n";
      return 1;
    }
    std::cout << "Wrote " << queries_out << ": " << queries.size()
              << " pivoted queries of size " << size << "\n";
  }
  return 0;
}
