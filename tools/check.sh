#!/usr/bin/env bash
# Single entry point for every static gate (DESIGN.md §15.5):
#
#   tools/check.sh [--require] [build-dir]
#
# Runs, in order: clang-format (check-only), clang-tidy
# (tools/run_lint.sh), cppcheck (tools/run_cppcheck.sh), and
# tools/psi_check over the repo. Stages whose binary is missing skip with
# a notice unless --require is set (CI sets it). psi_check is built from
# this tree and therefore always runs — it is the one gate that cannot be
# skipped. Exits non-zero if any stage that ran found a problem.
set -uo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
require_flag=()
if [[ "${1:-}" == "--require" ]]; then
  require_flag=(--require)
  shift
fi
build_dir="${1:-build}"

cd "${repo_root}"
status=0

echo "== check.sh: clang-format (check only) ==" >&2
if command -v clang-format >/dev/null 2>&1; then
  # Fixture trees under tests/fixtures/ are scan fodder for psi_check's
  # self-tests, not first-party code.
  if ! git ls-files '*.h' '*.cc' ':!tests/fixtures/**' \
      | xargs clang-format --dry-run --Werror; then
    status=1
  fi
elif [[ "${#require_flag[@]}" -ne 0 ]]; then
  echo "check.sh: FATAL: --require set but clang-format was not found." >&2
  status=1
else
  echo "check.sh: clang-format not found; skipping format check." >&2
fi

echo "== check.sh: clang-tidy (tools/run_lint.sh) ==" >&2
if ! tools/run_lint.sh ${require_flag[@]+"${require_flag[@]}"} \
    "${build_dir}-lint"; then
  status=1
fi

echo "== check.sh: cppcheck (tools/run_cppcheck.sh) ==" >&2
if ! tools/run_cppcheck.sh ${require_flag[@]+"${require_flag[@]}"}; then
  status=1
fi

echo "== check.sh: psi_check ==" >&2
psi_check_bin="${build_dir}/tools/psi_check/psi_check"
if [[ ! -x "${psi_check_bin}" ]]; then
  echo "check.sh: building psi_check into ${build_dir}..." >&2
  cmake -B "${build_dir}" -S . >/dev/null
  cmake --build "${build_dir}" --target psi_check -j >/dev/null
fi
if ! "${psi_check_bin}" --root .; then
  status=1
fi

if [[ "${status}" -ne 0 ]]; then
  echo "check.sh: FAILED (one or more gates reported problems above)." >&2
else
  echo "check.sh: all gates clean." >&2
fi
exit "${status}"
