// psi_serve — in-process PSI query service front-end: answers a stream of
// newline-delimited pivoted queries (see service/workload.h for the line
// format) against one shared engine state, with bounded admission and
// per-request deadlines. No sockets: stdin/file in, stdout out.
//
//   psi_serve graph.lg --workers 8 < workload.txt
//   psi_serve --generate 100000,400000,8 --workload w.txt --deadline-ms 50
//   psi_generate --nodes 1000 ... && psi_serve graph.lg   # end-to-end

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "service/service.h"
#include "service/workload.h"
#include "util/random.h"

namespace {

using namespace psi;

void Usage() {
  std::cerr <<
      "Usage: psi_serve <graph.lg> [options]\n"
      "       psi_serve --generate N,M,L [options]   (Erdos-Renyi stand-in)\n"
      "  --workload FILE   request lines (default: stdin; '-' = stdin)\n"
      "  --workers N       concurrent query executions (default 4)\n"
      "  --queue N         admission queue bound (default 256)\n"
      "  --deadline-ms D   default per-request deadline (default: none)\n"
      "  --depth D         signature depth (default 2)\n"
      "  --seed S          RNG seed for --generate (default 42)\n"
      "  --quiet           suppress per-request lines, print stats only\n"
      "\n"
      "Per-request output: id=<id> status=<status> valid=<n> latency_ms=<t>\n";
}

void PrintResponse(const service::QueryResponse& r) {
  std::cout << "id=" << r.id << " status=" << RequestStatusName(r.status)
            << " valid=" << r.valid_nodes.size()
            << " latency_ms=" << r.latency_seconds * 1e3 << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  std::string graph_path;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--quiet") {
      args[key] = "1";
    } else if (key.rfind("--", 0) == 0) {
      if (i + 1 >= argc) {
        Usage();
        return 2;
      }
      args[key] = argv[++i];
    } else if (graph_path.empty()) {
      graph_path = key;
    } else {
      Usage();
      return 2;
    }
  }
  auto get = [&](const std::string& key, const std::string& fallback) {
    const auto it = args.find(key);
    return it == args.end() ? fallback : it->second;
  };

  // --- Graph --------------------------------------------------------------
  graph::Graph g;
  if (args.count("--generate")) {
    size_t nodes = 0, edges = 0, labels = 8;
    if (std::sscanf(args["--generate"].c_str(), "%zu,%zu,%zu", &nodes, &edges,
                    &labels) < 2) {
      std::cerr << "bad --generate spec (want N,M[,L])\n";
      return 2;
    }
    util::Rng rng(std::strtoull(get("--seed", "42").c_str(), nullptr, 10));
    graph::LabelConfig label_config;
    label_config.num_labels = labels;
    g = graph::RelabelWithHomophily(
        graph::ErdosRenyi(nodes, edges, label_config, rng), 0.6, 2, rng);
  } else if (!graph_path.empty()) {
    auto loaded = graph::LoadLgFile(graph_path);
    if (!loaded.ok()) {
      std::cerr << loaded.status().ToString() << "\n";
      return 1;
    }
    g = std::move(loaded).value();
  } else {
    Usage();
    return 2;
  }
  std::cerr << "Graph: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " edges, " << g.num_labels() << " labels\n";

  // --- Service ------------------------------------------------------------
  service::ServiceOptions options;
  options.num_workers =
      std::strtoull(get("--workers", "4").c_str(), nullptr, 10);
  options.max_queue_depth =
      std::strtoull(get("--queue", "256").c_str(), nullptr, 10);
  options.default_deadline_seconds =
      std::atof(get("--deadline-ms", "0").c_str()) / 1e3;
  options.engine.signature_depth = static_cast<uint32_t>(
      std::strtoul(get("--depth", "2").c_str(), nullptr, 10));
  service::PsiService psi_service(g, options);
  std::cerr << "Service: " << options.num_workers << " workers, queue bound "
            << options.max_queue_depth << ", signatures built in "
            << psi_service.Stats().signature_build_seconds << " s\n";

  // --- Request loop -------------------------------------------------------
  const std::string workload_path = get("--workload", "-");
  std::ifstream file;
  if (workload_path != "-") {
    file.open(workload_path);
    if (!file) {
      std::cerr << "cannot open workload file " << workload_path << "\n";
      return 1;
    }
  }
  std::istream& in = workload_path == "-" ? std::cin : file;
  const bool quiet = args.count("--quiet") > 0;

  // Responses print in submission order; the window keeps enough requests
  // in flight to saturate the workers without holding every future at once.
  const size_t window = options.num_workers * 4 + options.max_queue_depth;
  std::deque<std::future<service::QueryResponse>> pending;
  auto drain_one = [&]() {
    service::QueryResponse r = pending.front().get();
    pending.pop_front();
    if (!quiet) PrintResponse(r);
  };

  std::string line;
  size_t line_number = 0;
  size_t parse_errors = 0;
  uint64_t next_id = 1;
  while (std::getline(in, line)) {
    ++line_number;
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    auto parsed = service::ParseWorkloadLine(line);
    if (!parsed.ok()) {
      std::cerr << "line " << line_number << ": "
                << parsed.status().ToString() << "\n";
      ++parse_errors;
      continue;
    }
    service::QueryRequest request = std::move(parsed).value();
    if (request.id == 0) request.id = next_id;
    next_id = std::max(next_id, request.id) + 1;
    const uint64_t id = request.id;
    auto future = psi_service.Submit(std::move(request));
    if (!future.has_value()) {
      if (!quiet) {
        std::cout << "id=" << id << " status=rejected valid=0 latency_ms=0\n";
      }
      continue;
    }
    pending.push_back(std::move(*future));
    while (pending.size() >= window) drain_one();
  }
  while (!pending.empty()) drain_one();

  // --- Stats --------------------------------------------------------------
  const service::ServiceStats stats = psi_service.Stats();
  std::cerr << stats.metrics.ToString() << "\n"
            << "cache: entries=" << stats.cache_entries
            << " hits=" << stats.cache.hits << " misses=" << stats.cache.misses
            << " inserts=" << stats.cache.inserts << "\n";
  return parse_errors == 0 ? 0 : 1;
}
