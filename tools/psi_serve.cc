// psi_serve — in-process PSI query service front-end: answers a stream of
// newline-delimited pivoted queries (see service/workload.h for the line
// format) against a catalog of named graph snapshots, with bounded
// admission and per-request deadlines. No sockets: stdin/file in, stdout
// out.
//
//   psi_serve graph.lg --workers 8 < workload.txt
//   psi_serve --generate 100000,400000,8 --workload w.txt --deadline-ms 50
//   psi_generate --nodes 1000 ... && psi_serve graph.lg   # end-to-end
//
// Admin commands ride the same control stream, prefixed with '!'; queries
// before and after keep serving while a load builds in the background:
//
//   !load social graph2.lg       # background build + publish
//   !swap social gen:5000,20000,8,7   # hot-swap from a generator spec
//   !retire social
//   !list
// Queries select a graph with the g= token: v=0,1 e=0-1 p=0 g=social

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "service/service.h"
#include "service/workload.h"
#include "util/random.h"

namespace {

using namespace psi;

void Usage() {
  std::cerr <<
      "Usage: psi_serve <graph.lg> [options]\n"
      "       psi_serve --generate N,M,L [options]   (Erdos-Renyi stand-in)\n"
      "  --workload FILE   request lines (default: stdin; '-' = stdin)\n"
      "  --workers N       concurrent query executions (default 4)\n"
      "  --queue N         admission queue bound (default 256)\n"
      "  --deadline-ms D   default per-request deadline (default: none)\n"
      "  --depth D         signature depth (default 2)\n"
      "  --seed S          RNG seed for --generate (default 42)\n"
      "  --quiet           suppress per-request lines, print stats only\n"
      "\n"
      "Admin commands (inline in the request stream):\n"
      "  !load NAME SRC    build+publish graph SRC (file or gen:N,M[,L[,S]])\n"
      "  !swap NAME SRC    alias for !load — hot-swaps a served name\n"
      "  !retire NAME      stop serving NAME (in-flight requests finish)\n"
      "  !list             print catalog snapshots and pin gauges\n"
      "\n"
      "Per-request output: id=<id> status=<status> valid=<n> latency_ms=<t> "
      "snapshot=<v>\n";
}

void PrintResponse(const service::QueryResponse& r) {
  std::cout << "id=" << r.id << " status=" << RequestStatusName(r.status)
            << " valid=" << r.valid_nodes.size()
            << " latency_ms=" << r.latency_seconds * 1e3
            << " snapshot=" << r.snapshot_version << "\n";
}

/// Loads a graph for an admin command: either a .lg file path or an
/// inline generator spec "gen:N,M[,L[,seed]]".
util::Result<graph::Graph> LoadAdminGraph(const std::string& source) {
  if (source.rfind("gen:", 0) == 0) {
    size_t nodes = 0, edges = 0, labels = 8;
    unsigned long long seed = 42;
    if (std::sscanf(source.c_str(), "gen:%zu,%zu,%zu,%llu", &nodes, &edges,
                    &labels, &seed) < 2) {
      return util::Status::InvalidArgument("bad generator spec '" + source +
                                           "' (want gen:N,M[,L[,seed]])");
    }
    util::Rng rng(seed);
    graph::LabelConfig label_config;
    label_config.num_labels = labels;
    return graph::RelabelWithHomophily(
        graph::ErdosRenyi(nodes, edges, label_config, rng), 0.6, 2, rng);
  }
  return graph::LoadLgFile(source);
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  std::string graph_path;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--quiet") {
      args[key] = "1";
    } else if (key.rfind("--", 0) == 0) {
      if (i + 1 >= argc) {
        Usage();
        return 2;
      }
      args[key] = argv[++i];
    } else if (graph_path.empty()) {
      graph_path = key;
    } else {
      Usage();
      return 2;
    }
  }
  auto get = [&](const std::string& key, const std::string& fallback) {
    const auto it = args.find(key);
    return it == args.end() ? fallback : it->second;
  };

  // --- Graph --------------------------------------------------------------
  graph::Graph g;
  if (args.count("--generate")) {
    size_t nodes = 0, edges = 0, labels = 8;
    if (std::sscanf(args["--generate"].c_str(), "%zu,%zu,%zu", &nodes, &edges,
                    &labels) < 2) {
      std::cerr << "bad --generate spec (want N,M[,L])\n";
      return 2;
    }
    util::Rng rng(std::strtoull(get("--seed", "42").c_str(), nullptr, 10));
    graph::LabelConfig label_config;
    label_config.num_labels = labels;
    g = graph::RelabelWithHomophily(
        graph::ErdosRenyi(nodes, edges, label_config, rng), 0.6, 2, rng);
  } else if (!graph_path.empty()) {
    auto loaded = graph::LoadLgFile(graph_path);
    if (!loaded.ok()) {
      std::cerr << loaded.status().ToString() << "\n";
      return 1;
    }
    g = std::move(loaded).value();
  } else {
    Usage();
    return 2;
  }
  std::cerr << "Graph: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " edges, " << g.num_labels() << " labels\n";

  // --- Service ------------------------------------------------------------
  service::ServiceOptions options;
  options.num_workers =
      std::strtoull(get("--workers", "4").c_str(), nullptr, 10);
  options.max_queue_depth =
      std::strtoull(get("--queue", "256").c_str(), nullptr, 10);
  options.default_deadline_seconds =
      std::atof(get("--deadline-ms", "0").c_str()) / 1e3;
  options.engine.signature_depth = static_cast<uint32_t>(
      std::strtoul(get("--depth", "2").c_str(), nullptr, 10));
  service::PsiService psi_service(g, options);
  std::cerr << "Service: " << options.num_workers << " workers, queue bound "
            << options.max_queue_depth << ", signatures built in "
            << psi_service.Stats().signature_build_seconds << " s\n";

  // --- Request loop -------------------------------------------------------
  const std::string workload_path = get("--workload", "-");
  std::ifstream file;
  if (workload_path != "-") {
    file.open(workload_path);
    if (!file) {
      std::cerr << "cannot open workload file " << workload_path << "\n";
      return 1;
    }
  }
  std::istream& in = workload_path == "-" ? std::cin : file;
  const bool quiet = args.count("--quiet") > 0;

  // Responses print in submission order; the window keeps enough requests
  // in flight to saturate the workers without holding every future at once.
  const size_t window = options.num_workers * 4 + options.max_queue_depth;
  std::deque<std::future<service::QueryResponse>> pending;
  auto drain_one = [&]() {
    service::QueryResponse r = pending.front().get();
    pending.pop_front();
    if (!quiet) PrintResponse(r);
  };

  // Background loads in flight: polled (non-blocking) every control-stream
  // turn so completions print promptly, drained (blocking) before exit.
  std::vector<std::pair<
      std::string,
      std::future<util::Result<std::shared_ptr<const service::GraphSnapshot>>>>>
      pending_loads;
  auto poll_loads = [&](bool block) {
    for (auto it = pending_loads.begin(); it != pending_loads.end();) {
      if (!block && it->second.wait_for(std::chrono::seconds(0)) !=
                        std::future_status::ready) {
        ++it;
        continue;
      }
      auto result = it->second.get();
      if (result.ok()) {
        std::cerr << "loaded '" << it->first
                  << "' version=" << result.value()->version() << " ("
                  << result.value()->graph().num_nodes() << " nodes, built in "
                  << result.value()->timings().signature_build_seconds
                  << " s)\n";
      } else {
        std::cerr << "load '" << it->first
                  << "' failed: " << result.status().ToString() << "\n";
      }
      it = pending_loads.erase(it);
    }
  };
  auto handle_admin = [&](const std::string& command) {
    std::istringstream tokens(command);
    std::string op, name, source;
    tokens >> op >> name >> source;
    if ((op == "load" || op == "swap") && !name.empty() && !source.empty()) {
      auto loaded = LoadAdminGraph(source);
      if (!loaded.ok()) {
        std::cerr << "!" << op << ": " << loaded.status().ToString() << "\n";
        return false;
      }
      service::SnapshotBuildOptions build;
      build.signature_depth = options.engine.signature_depth;
      pending_loads.emplace_back(
          name, psi_service.catalog().BuildAndPublishAsync(
                    name, std::move(loaded).value(), build));
      std::cerr << "building '" << name << "' in background...\n";
      return true;
    }
    if (op == "retire" && !name.empty()) {
      if (psi_service.catalog().Retire(name)) {
        std::cerr << "retired '" << name << "'\n";
      } else {
        std::cerr << "!retire: unknown graph '" << name << "'\n";
      }
      return true;
    }
    if (op == "list") {
      poll_loads(/*block=*/false);
      for (const auto& e : psi_service.catalog().List()) {
        std::cerr << (e.current ? "current" : "retired") << " " << e.name
                  << " v" << e.version << " pins=" << e.pins
                  << " nodes=" << e.num_nodes << " edges=" << e.num_edges
                  << " labels=" << e.num_labels
                  << " build_s=" << e.timings.signature_build_seconds << "\n";
      }
      return true;
    }
    std::cerr << "bad admin command: !" << command << "\n";
    return false;
  };

  std::string line;
  size_t line_number = 0;
  size_t parse_errors = 0;
  uint64_t next_id = 1;
  while (std::getline(in, line)) {
    ++line_number;
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    poll_loads(/*block=*/false);
    if (line[start] == '!') {
      if (!handle_admin(line.substr(start + 1))) ++parse_errors;
      continue;
    }
    auto parsed = service::ParseWorkloadLine(line);
    if (!parsed.ok()) {
      std::cerr << "line " << line_number << ": "
                << parsed.status().ToString() << "\n";
      ++parse_errors;
      continue;
    }
    service::QueryRequest request = std::move(parsed).value();
    if (request.id == 0) request.id = next_id;
    next_id = std::max(next_id, request.id) + 1;
    const uint64_t id = request.id;
    auto future = psi_service.Submit(std::move(request));
    if (!future.has_value()) {
      if (!quiet) {
        std::cout << "id=" << id << " status=rejected valid=0 latency_ms=0\n";
      }
      continue;
    }
    pending.push_back(std::move(*future));
    while (pending.size() >= window) drain_one();
  }
  while (!pending.empty()) drain_one();
  poll_loads(/*block=*/true);

  // --- Stats --------------------------------------------------------------
  const service::ServiceStats stats = psi_service.Stats();
  std::cerr << stats.metrics.ToString() << "\n"
            << "cache: entries=" << stats.cache_entries
            << " hits=" << stats.cache.hits << " misses=" << stats.cache.misses
            << " inserts=" << stats.cache.inserts
            << " epoch_drops=" << stats.cache.epoch_drops << "\n";
  for (const auto& e : stats.snapshots) {
    std::cerr << "snapshot: " << (e.current ? "current" : "retired") << " "
              << e.name << " v" << e.version << " pins=" << e.pins
              << " nodes=" << e.num_nodes << "\n";
  }
  return parse_errors == 0 ? 0 : 1;
}
