// psi_serve — in-process PSI query service front-end: answers a stream of
// newline-delimited pivoted queries (see service/workload.h for the line
// format) against a catalog of named graph snapshots, with bounded
// admission and per-request deadlines. No sockets: stdin/file in, stdout
// out.
//
//   psi_serve graph.lg --workers 8 < workload.txt
//   psi_serve --generate 100000,400000,8 --workload w.txt --deadline-ms 50
//   psi_serve graph.lg --shards 4        # sharded router, same stream
//   psi_generate --nodes 1000 ... && psi_serve graph.lg   # end-to-end
//
// Admin commands ride the same control stream, prefixed with '!'; queries
// before and after keep serving while a load builds in the background:
//
//   !load social graph2.lg       # background build + publish
//   !swap social gen:5000,20000,8,7   # hot-swap from a generator spec
//   !load social graph2.psnap    # mmap a prebuilt snapshot — no rebuild
//   !save social graph2.psnap    # persist a served graph as a .psnap
//   !retire social
//   !list
// Queries select a graph with the g= token: v=0,1 e=0-1 p=0 g=social
//
// With --shards K every named graph is partitioned into K label-aware
// shards and published as one atomic generation; !load/!swap then build
// whole generations, !list shows the per-shard snapshot rows, and the
// final stats include per-shard admitted/settled/cross_shard_forwards.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "service/service.h"
#include "service/snapshot_io.h"
#include "service/workload.h"
#include "shard/sharded_catalog.h"
#include "shard/sharded_service.h"
#include "tools/tool_args.h"
#include "util/random.h"

namespace {

using namespace psi;

void Usage() {
  std::cerr <<
      "Usage: psi_serve <graph.lg> [options]\n"
      "       psi_serve --generate N,M,L [options]   (Erdos-Renyi stand-in)\n"
      "  --workload FILE   request lines (default: stdin; '-' = stdin)\n"
      "  --workers N       concurrent query executions (default 4)\n"
      "  --queue N         admission queue bound (default 256)\n"
      "  --deadline-ms D   default per-request deadline (default: none)\n"
      "  --depth D         signature depth (default 2)\n"
      "  --seed S          RNG seed for --generate (default 42)\n"
      "  --shards K        sharded serving: partition every graph into K\n"
      "                    label-aware shards published as one atomic\n"
      "                    generation; requests fan out to shard-local\n"
      "                    evaluation with cross-shard continuations\n"
      "  --search-threads N  work-stealing workers per query evaluation\n"
      "                    (default 1 = sequential; not with --shards)\n"
      "  --restarts on|off Luby restarts + nogood recording on pessimistic\n"
      "                    search paths (default off; not with --shards)\n"
      "  --quiet           suppress per-request lines, print stats only\n"
      "\n"
      "Admin commands (inline in the request stream):\n"
      "  !load NAME SRC    build+publish graph SRC (file or gen:N,M[,L[,S]]);\n"
      "                    a .psnap SRC is mmapped and published without\n"
      "                    rebuilding (psi_snapshot build; not with --shards)\n"
      "  !swap NAME SRC    alias for !load — hot-swaps a served name\n"
      "  !save NAME FILE   write served graph NAME as a .psnap snapshot\n"
      "  !retire NAME      stop serving NAME (in-flight requests finish)\n"
      "  !list             print catalog snapshots and pin gauges\n"
      "\n"
      "Per-request output: id=<id> status=<status> valid=<n> latency_ms=<t> "
      "snapshot=<v>\n";
}

void PrintResponse(const service::QueryResponse& r) {
  std::cout << "id=" << r.id << " status=" << RequestStatusName(r.status)
            << " valid=" << r.valid_nodes.size()
            << " latency_ms=" << r.latency_seconds * 1e3
            << " snapshot=" << r.snapshot_version << "\n";
}

/// Loads a graph for an admin command: either a .lg file path or an
/// inline generator spec "gen:N,M[,L[,seed]]".
util::Result<graph::Graph> LoadAdminGraph(const std::string& source) {
  if (source.rfind("gen:", 0) == 0) {
    size_t nodes = 0, edges = 0, labels = 8;
    unsigned long long seed = 42;
    if (std::sscanf(source.c_str(), "gen:%zu,%zu,%zu,%llu", &nodes, &edges,
                    &labels, &seed) < 2) {
      return util::Status::InvalidArgument("bad generator spec '" + source +
                                           "' (want gen:N,M[,L[,seed]])");
    }
    util::Rng rng(seed);
    graph::LabelConfig label_config;
    label_config.num_labels = labels;
    return graph::RelabelWithHomophily(
        graph::ErdosRenyi(nodes, edges, label_config, rng), 0.6, 2, rng);
  }
  return graph::LoadLgFile(source);
}

/// Admin !load/!swap build options for each service flavour. The sharded
/// overload inherits the service's partitioning config so a hot-swapped
/// graph lands with the same K as the seed.
service::SnapshotBuildOptions AdminBuildOptions(const service::PsiService&,
                                                uint32_t depth) {
  service::SnapshotBuildOptions build;
  build.signature_depth = depth;
  return build;
}
shard::ShardedCatalog::BuildOptions AdminBuildOptions(
    const shard::ShardedPsiService& s, uint32_t depth) {
  shard::ShardedCatalog::BuildOptions build = s.options().build;
  build.snapshot.signature_depth = depth;
  build.snapshot.pool = nullptr;  // background std::async build stays serial
  return build;
}

void PrintLoaded(const std::string& name, const service::GraphSnapshot& s) {
  std::cerr << "loaded '" << name << "' version=" << s.version() << " ("
            << s.graph().num_nodes() << " nodes, built in "
            << s.timings().signature_build_seconds << " s)\n";
}
void PrintLoaded(const std::string& name, const shard::ShardedGeneration& g) {
  std::cerr << "loaded '" << name << "' generation=" << g.generation() << " ("
            << g.num_shards() << " shards, " << g.meta().num_nodes
            << " nodes, built in "
            << g.shard(0).timings().signature_build_seconds << " s)\n";
}

/// The serve loop proper, generic over the two service flavours — both
/// expose the same Submit/Stats/catalog() surface, so the control stream,
/// admin commands and response windowing are shared verbatim. Returns the
/// process exit code.
template <typename Service>
int ServeLoop(Service& psi_service, std::istream& in, bool quiet,
              size_t window, uint32_t depth) {
  // Responses print in submission order; the window keeps enough requests
  // in flight to saturate the workers without holding every future at once.
  std::deque<std::future<service::QueryResponse>> pending;
  auto drain_one = [&]() {
    service::QueryResponse r = pending.front().get();
    pending.pop_front();
    if (!quiet) PrintResponse(r);
  };

  // Background loads in flight: polled (non-blocking) every control-stream
  // turn so completions print promptly, drained (blocking) before exit.
  using LoadFuture = decltype(psi_service.catalog().BuildAndPublishAsync(
      std::string(), graph::Graph(), AdminBuildOptions(psi_service, depth)));
  std::vector<std::pair<std::string, LoadFuture>> pending_loads;
  auto poll_loads = [&](bool block) {
    for (auto it = pending_loads.begin(); it != pending_loads.end();) {
      if (!block && it->second.wait_for(std::chrono::seconds(0)) !=
                        std::future_status::ready) {
        ++it;
        continue;
      }
      auto result = it->second.get();
      if (result.ok()) {
        PrintLoaded(it->first, *result.value());
      } else {
        std::cerr << "load '" << it->first
                  << "' failed: " << result.status().ToString() << "\n";
      }
      it = pending_loads.erase(it);
    }
  };
  auto is_psnap = [](const std::string& source) {
    constexpr std::string_view kExt = ".psnap";
    return source.size() >= kExt.size() &&
           source.compare(source.size() - kExt.size(), kExt.size(), kExt) == 0;
  };
  auto handle_admin = [&](const std::string& command) {
    std::istringstream tokens(command);
    std::string op, name, source;
    tokens >> op >> name >> source;
    if ((op == "load" || op == "swap") && !name.empty() && !source.empty() &&
        is_psnap(source)) {
      // A prebuilt snapshot publishes synchronously: the load is mmap +
      // validation, not a signature rebuild, so there is no build to hide
      // in the background (DESIGN.md §16.3).
      if constexpr (std::is_same_v<Service, service::PsiService>) {
        auto published =
            psi_service.catalog().PublishFromFile(name, source);
        if (!published.ok()) {
          std::cerr << "!" << op << ": " << published.status().ToString()
                    << "\n";
          return false;
        }
        const service::GraphSnapshot& s = *published.value();
        std::cerr << "loaded '" << name << "' version=" << s.version()
                  << " (" << s.graph().num_nodes() << " nodes, mapped in "
                  << s.timings().load_seconds << " s)\n";
        return true;
      } else {
        std::cerr << "!" << op
                  << ": .psnap snapshots hold one unpartitioned graph and "
                     "cannot be published into a sharded catalog\n";
        return false;
      }
    }
    if (op == "save" && !name.empty() && !source.empty()) {
      if constexpr (std::is_same_v<Service, service::PsiService>) {
        const auto snapshot = psi_service.catalog().Resolve(name);
        if (snapshot == nullptr) {
          std::cerr << "!save: unknown graph '" << name << "'\n";
          return false;
        }
        const auto status = service::SaveSnapshotFile(
            snapshot->graph(), snapshot->signatures(), source);
        if (!status.ok()) {
          std::cerr << "!save: " << status.ToString() << "\n";
          return false;
        }
        std::cerr << "saved '" << name << "' version="
                  << snapshot->version() << " to " << source << "\n";
        return true;
      } else {
        std::cerr << "!save: not supported with --shards\n";
        return false;
      }
    }
    if ((op == "load" || op == "swap") && !name.empty() && !source.empty()) {
      auto loaded = LoadAdminGraph(source);
      if (!loaded.ok()) {
        std::cerr << "!" << op << ": " << loaded.status().ToString() << "\n";
        return false;
      }
      pending_loads.emplace_back(
          name, psi_service.catalog().BuildAndPublishAsync(
                    name, std::move(loaded).value(),
                    AdminBuildOptions(psi_service, depth)));
      std::cerr << "building '" << name << "' in background...\n";
      return true;
    }
    if (op == "retire" && !name.empty()) {
      if (psi_service.catalog().Retire(name)) {
        std::cerr << "retired '" << name << "'\n";
      } else {
        std::cerr << "!retire: unknown graph '" << name << "'\n";
      }
      return true;
    }
    if (op == "list") {
      poll_loads(/*block=*/false);
      for (const auto& e : psi_service.catalog().List()) {
        std::cerr << (e.current ? "current" : "retired") << " " << e.name
                  << " v" << e.version << " pins=" << e.pins
                  << " nodes=" << e.num_nodes << " edges=" << e.num_edges
                  << " labels=" << e.num_labels
                  << " build_s=" << e.timings.signature_build_seconds << "\n";
      }
      return true;
    }
    std::cerr << "bad admin command: !" << command << "\n";
    return false;
  };

  std::string line;
  size_t line_number = 0;
  size_t parse_errors = 0;
  uint64_t next_id = 1;
  while (std::getline(in, line)) {
    ++line_number;
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    poll_loads(/*block=*/false);
    if (line[start] == '!') {
      if (!handle_admin(line.substr(start + 1))) ++parse_errors;
      continue;
    }
    auto parsed = service::ParseWorkloadLine(line);
    if (!parsed.ok()) {
      std::cerr << "line " << line_number << ": "
                << parsed.status().ToString() << "\n";
      ++parse_errors;
      continue;
    }
    service::QueryRequest request = std::move(parsed).value();
    if (request.id == 0) request.id = next_id;
    next_id = std::max(next_id, request.id) + 1;
    const uint64_t id = request.id;
    auto future = psi_service.Submit(std::move(request));
    if (!future.has_value()) {
      if (!quiet) {
        std::cout << "id=" << id << " status=rejected valid=0 latency_ms=0\n";
      }
      continue;
    }
    pending.push_back(std::move(*future));
    while (pending.size() >= window) drain_one();
  }
  while (!pending.empty()) drain_one();
  poll_loads(/*block=*/true);

  // --- Stats --------------------------------------------------------------
  const service::ServiceStats stats = psi_service.Stats();
  std::cerr << stats.metrics.ToString() << "\n";
  if constexpr (std::is_same_v<Service, service::PsiService>) {
    std::cerr << "cache: entries=" << stats.cache_entries
              << " hits=" << stats.cache.hits
              << " misses=" << stats.cache.misses
              << " inserts=" << stats.cache.inserts
              << " epoch_drops=" << stats.cache.epoch_drops << "\n";
  }
  for (const auto& e : stats.snapshots) {
    std::cerr << "snapshot: " << (e.current ? "current" : "retired") << " "
              << e.name << " v" << e.version << " pins=" << e.pins
              << " nodes=" << e.num_nodes << "\n";
  }
  return parse_errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  tools::ArgSpec arg_spec;
  arg_spec.switches = {"--quiet"};
  arg_spec.options = {"--generate",       "--workload", "--workers",
                      "--queue",          "--deadline-ms", "--depth",
                      "--seed",           "--shards",   "--search-threads",
                      "--restarts"};
  arg_spec.max_positional = 1;
  const tools::ParsedArgs args = tools::ParseArgs(argc, argv, arg_spec);
  if (!args.ok()) {
    std::cerr << "psi_serve: " << args.error << "\n";
    Usage();
    return 2;
  }
  const std::string graph_path =
      args.positional.empty() ? std::string() : args.positional[0];
  auto get = [&](const std::string& key, const std::string& fallback) {
    return args.Get(key, fallback);
  };

  // --- Graph --------------------------------------------------------------
  graph::Graph g;
  if (args.Has("--generate")) {
    size_t nodes = 0, edges = 0, labels = 8;
    if (std::sscanf(get("--generate", "").c_str(), "%zu,%zu,%zu", &nodes,
                    &edges, &labels) < 2) {
      std::cerr << "bad --generate spec (want N,M[,L])\n";
      return 2;
    }
    util::Rng rng(std::strtoull(get("--seed", "42").c_str(), nullptr, 10));
    graph::LabelConfig label_config;
    label_config.num_labels = labels;
    g = graph::RelabelWithHomophily(
        graph::ErdosRenyi(nodes, edges, label_config, rng), 0.6, 2, rng);
  } else if (!graph_path.empty()) {
    auto loaded = graph::LoadLgFile(graph_path);
    if (!loaded.ok()) {
      std::cerr << loaded.status().ToString() << "\n";
      return 1;
    }
    g = std::move(loaded).value();
  } else {
    Usage();
    return 2;
  }
  std::cerr << "Graph: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " edges, " << g.num_labels() << " labels\n";

  // --- Workload stream ----------------------------------------------------
  const std::string workload_path = get("--workload", "-");
  std::ifstream file;
  if (workload_path != "-") {
    file.open(workload_path);
    if (!file) {
      std::cerr << "cannot open workload file " << workload_path << "\n";
      return 1;
    }
  }
  std::istream& in = workload_path == "-" ? std::cin : file;
  const bool quiet = args.Has("--quiet");

  const size_t num_workers =
      std::strtoull(get("--workers", "4").c_str(), nullptr, 10);
  const size_t max_queue_depth =
      std::strtoull(get("--queue", "256").c_str(), nullptr, 10);
  const double deadline_seconds =
      std::atof(get("--deadline-ms", "0").c_str()) / 1e3;
  const uint32_t depth = static_cast<uint32_t>(
      std::strtoul(get("--depth", "2").c_str(), nullptr, 10));
  const size_t window = num_workers * 4 + max_queue_depth;

  // --- Search-core knobs (DESIGN.md §14) ---------------------------------
  size_t search_threads = 1;
  if (args.Has("--search-threads")) {
    const std::string raw = get("--search-threads", "1");
    char* end = nullptr;
    search_threads = std::strtoull(raw.c_str(), &end, 10);
    if (end == raw.c_str() || *end != '\0' || search_threads == 0) {
      std::cerr << "psi_serve: --search-threads wants a positive integer, "
                   "got '" << raw << "'\n";
      return 2;
    }
  }
  bool search_restarts = false;
  if (args.Has("--restarts")) {
    const std::string raw = get("--restarts", "off");
    if (raw == "on") {
      search_restarts = true;
    } else if (raw != "off") {
      std::cerr << "psi_serve: --restarts wants on|off, got '" << raw
                << "'\n";
      return 2;
    }
  }
  if (args.Has("--shards") &&
      (args.Has("--search-threads") || args.Has("--restarts"))) {
    std::cerr << "psi_serve: --search-threads/--restarts tune the "
                 "single-node engine and cannot combine with --shards\n";
    return 2;
  }

  // --- Service ------------------------------------------------------------
  if (args.Has("--shards")) {
    const uint32_t shards = static_cast<uint32_t>(
        std::strtoul(get("--shards", "0").c_str(), nullptr, 10));
    if (shards == 0) {
      std::cerr << "psi_serve: --shards wants a positive shard count\n";
      return 2;
    }
    shard::ShardedServiceOptions options;
    options.num_workers = num_workers;
    options.max_queue_depth = max_queue_depth;
    options.default_deadline_seconds = deadline_seconds;
    options.build.partition.num_shards = shards;
    options.build.snapshot.signature_depth = depth;
    shard::ShardedPsiService psi_service(g, options);
    std::cerr << "Service: " << shards << " shards, " << num_workers
              << " workers, queue bound " << max_queue_depth
              << ", signatures built in "
              << psi_service.Stats().signature_build_seconds << " s\n";
    return ServeLoop(psi_service, in, quiet, window, depth);
  }

  service::ServiceOptions options;
  options.num_workers = num_workers;
  options.max_queue_depth = max_queue_depth;
  options.default_deadline_seconds = deadline_seconds;
  options.engine.signature_depth = depth;
  options.search_threads = search_threads;
  options.search_restarts = search_restarts;
  service::PsiService psi_service(g, options);
  std::cerr << "Service: " << num_workers << " workers, queue bound "
            << max_queue_depth << ", signatures built in "
            << psi_service.Stats().signature_build_seconds << " s\n";
  return ServeLoop(psi_service, in, quiet, window, depth);
}
