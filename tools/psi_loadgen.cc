// psi_loadgen — open-loop load generator for the in-process PSI query
// service. Extracts a query workload from the data graph, offers it at a
// target arrival rate (or at saturation), and reports throughput, tail
// latency and shedding behaviour.
//
//   psi_loadgen --generate 100000,400000,8 --workers 8 --requests 400
//   psi_loadgen graph.lg --qps 200 --deadline-ms-max 50 --baseline
//
// Open-loop means arrivals do not wait for completions: when the offered
// rate exceeds service capacity the admission queue fills and requests are
// shed (status=rejected) rather than buffered into unbounded latency.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "service/service.h"
#include "service/workload.h"
#include "shard/sharded_catalog.h"
#include "shard/sharded_service.h"
#include "tools/tool_args.h"
#include "util/fault_injection.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using namespace psi;

void Usage() {
  std::cerr <<
      "Usage: psi_loadgen <graph.lg> [options]\n"
      "       psi_loadgen --generate N,M,L [options]\n"
      "  --requests R          total requests offered (default 200)\n"
      "  --qps Q               open-loop arrival rate; 0 = saturation mode\n"
      "                        (submit-with-backpressure, default)\n"
      "  --workers W           service workers (default 8)\n"
      "  --queue D             admission queue bound (default 256)\n"
      "  --query-size K        nodes per extracted query (default 5)\n"
      "  --unique U            distinct queries to cycle over (default: R —\n"
      "                        all unique; small U exercises the shared\n"
      "                        prediction cache like repeated user traffic)\n"
      "  --deadline-ms-min A   per-request deadline lower bound (default 0)\n"
      "  --deadline-ms-max B   upper bound; 0 disables deadlines (default 0)\n"
      "  --method M            smart | optimistic | pessimistic\n"
      "  --depth D             signature depth (default 2)\n"
      "  --seed S              workload/graph seed (default 42)\n"
      "  --baseline            also run serially (1 worker) and report the\n"
      "                        concurrency speedup\n"
      "  --stress              cancellation/deadline storm: tight random\n"
      "                        deadlines (unless set explicitly), saturation\n"
      "                        submission in waves, each wave shut down with\n"
      "                        requests still in flight, plus a concurrent\n"
      "                        stats poller. Used by the TSan CI job to\n"
      "                        exercise the service's cancel paths end-to-end\n"
      "  --waves N             stress waves, each on a fresh service (default 4)\n"
      "  --chaos               chaos mode: arms the deterministic fault\n"
      "                        injector (--faults or a default cocktail),\n"
      "                        enables every graceful-degradation policy with\n"
      "                        small windows, offers the workload at\n"
      "                        saturation, and verifies the run end-to-end:\n"
      "                        metrics invariants hold in every snapshot,\n"
      "                        degraded-mode entry/exit is observed (default\n"
      "                        cocktail only — a custom --faults schedule\n"
      "                        need not provoke degradation), and the\n"
      "                        process never crashes. Exits nonzero on any\n"
      "                        violation. Requires a PSI_ENABLE_FAULT_INJECTION\n"
      "                        build for faults to actually fire\n"
      "  --faults SPEC         fault schedule for --chaos/--swap-storm, e.g.\n"
      "                        'cache.lookup.miss=every:3,service.worker.stall=prob:0.1@2'\n"
      "                        (see src/util/fault_injection.h for the grammar)\n"
      "  --swap-storm          hot-swap storm: saturation offering against a\n"
      "                        catalog-backed service while a swapper thread\n"
      "                        republishes the served graph as fast as it can\n"
      "                        build, with the catalog.publish fault site\n"
      "                        armed (failed publishes must leave the old\n"
      "                        snapshot serving). Verifies exact settlement,\n"
      "                        that every response reports a published\n"
      "                        snapshot version, zero cross-snapshot cache\n"
      "                        hits (epoch_drops == 0), pins draining to\n"
      "                        zero, and that every retired generation's\n"
      "                        memory is actually released. Exits nonzero on\n"
      "                        any violation\n"
      "  --swaps N             publishes the swapper attempts (default 24)\n"
      "  --shards K            serve through the sharded router: the graph is\n"
      "                        partitioned into K label-aware shards published\n"
      "                        as one generation, every request fans out to K\n"
      "                        shard-local evaluations, and the report includes\n"
      "                        per-shard admitted/settled/cross_shard_forwards\n"
      "                        counters. Combines with --baseline and with\n"
      "                        --swap-storm (which then storms whole K-shard\n"
      "                        generations with catalog.shard_publish armed,\n"
      "                        so publishes abort MID-generation); --chaos and\n"
      "                        --stress are single-engine-only and are\n"
      "                        rejected\n"
      "  --batch N             group the workload into BatchRequests of N\n"
      "                        queries and offer them through SubmitBatch at\n"
      "                        saturation (one admission unit, one pinned\n"
      "                        snapshot and one shared evaluation context per\n"
      "                        batch). Combines with --baseline (which then\n"
      "                        re-runs the same workload through sequential\n"
      "                        Submit for a batching-speedup figure); not\n"
      "                        with --shards (the router rejects batches),\n"
      "                        --chaos, --stress or --swap-storm\n"
      "  --search-threads N    work-stealing workers per query evaluation\n"
      "                        (default 1 = sequential; not with --shards)\n"
      "  --restarts on|off     Luby restarts + nogood recording on the\n"
      "                        pessimistic search paths (default off; not\n"
      "                        with --shards)\n";
}

struct RunReport {
  double wall_seconds = 0.0;
  service::ServiceStats stats;
  double Throughput() const {
    return wall_seconds <= 0.0
               ? 0.0
               : static_cast<double>(stats.metrics.completed +
                                     stats.metrics.timed_out) /
                     wall_seconds;
  }
};

/// Offers `requests` to `psi_service` and waits for every settled
/// response. qps <= 0 runs saturation mode: shed submissions are retried
/// after a short pause, measuring peak sustainable throughput. qps > 0
/// runs open-loop: arrivals stick to the schedule and shed requests stay
/// shed. Works against either service flavour — both expose the same
/// Submit/Stats surface.
template <typename Service>
RunReport DriveLoad(Service& psi_service,
                    const std::vector<service::QueryRequest>& requests,
                    double qps) {
  std::vector<std::future<service::QueryResponse>> futures;
  futures.reserve(requests.size());

  const auto start = std::chrono::steady_clock::now();
  util::WallTimer wall;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (qps > 0.0) {
      const auto arrival =
          start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(static_cast<double>(i) / qps));
      std::this_thread::sleep_until(arrival);
      auto future = psi_service.Submit(requests[i]);
      if (future.has_value()) futures.push_back(std::move(*future));
    } else {
      for (;;) {
        auto future = psi_service.Submit(requests[i]);
        if (future.has_value()) {
          futures.push_back(std::move(*future));
          break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
  }
  for (auto& future : futures) future.get();

  RunReport report;
  report.wall_seconds = wall.Seconds();
  report.stats = psi_service.Stats();
  return report;
}

RunReport OfferLoad(const graph::Graph& g,
                    const std::vector<service::QueryRequest>& requests,
                    const service::ServiceOptions& options, double qps) {
  service::PsiService psi_service(g, options);
  return DriveLoad(psi_service, requests, qps);
}

/// Batched offering: the workload is cut into BatchRequests of `batch_size`
/// queries, each submitted as one admission unit at saturation (a shed
/// batch is re-offered whole after a short pause — SubmitBatch never admits
/// a batch partially). The per-query responses settle through the ordinary
/// metrics, so RunReport::Throughput stays comparable with DriveLoad runs.
RunReport BatchedOfferLoad(const graph::Graph& g,
                           const std::vector<service::QueryRequest>& requests,
                           const service::ServiceOptions& options,
                           size_t batch_size) {
  service::PsiService psi_service(g, options);
  std::vector<std::future<service::BatchResponse>> futures;
  futures.reserve(requests.size() / batch_size + 1);

  util::WallTimer wall;
  uint64_t batch_id = 0;
  for (size_t begin = 0; begin < requests.size(); begin += batch_size) {
    const size_t end = std::min(requests.size(), begin + batch_size);
    service::BatchRequest batch;
    batch.id = ++batch_id;
    batch.queries.assign(requests.begin() + static_cast<ptrdiff_t>(begin),
                         requests.begin() + static_cast<ptrdiff_t>(end));
    for (;;) {
      auto future = psi_service.SubmitBatch(batch);
      if (future.has_value()) {
        futures.push_back(std::move(*future));
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  uint64_t context_hits = 0;
  uint64_t degraded = 0;
  for (auto& future : futures) {
    const service::BatchResponse response = future.get();
    context_hits += response.context_hits;
    degraded += response.degraded_queries;
  }

  RunReport report;
  report.wall_seconds = wall.Seconds();
  report.stats = psi_service.Stats();
  std::cerr << "Batched: " << futures.size() << " batches of <= "
            << batch_size << ", context hits " << context_hits
            << ", degraded " << degraded << "\n";
  return report;
}

RunReport ShardedOfferLoad(const graph::Graph& g,
                           const std::vector<service::QueryRequest>& requests,
                           const shard::ShardedServiceOptions& options,
                           double qps) {
  shard::ShardedPsiService psi_service(g, options);
  return DriveLoad(psi_service, requests, qps);
}

/// One stress wave: saturate the admission queue (no retry — shed stays
/// shed), then shut the service down while requests are still queued and
/// executing, with a poller hammering Stats() throughout. Returns settled
/// status counts; aborts the process if a snapshot ever violates the
/// metrics consistency contract (latency.count <= Settled() <= admitted).
std::map<std::string, uint64_t> StressWave(
    const graph::Graph& g, const std::vector<service::QueryRequest>& requests,
    const service::ServiceOptions& options) {
  service::PsiService psi_service(g, options);

  std::atomic<bool> poll{true};
  std::thread poller([&] {
    while (poll.load(std::memory_order_acquire)) {
      const service::ServiceStats stats = psi_service.Stats();
      const auto& m = stats.metrics;
      if (m.latency.count > m.Settled() || m.Settled() > m.admitted) {
        std::cerr << "metrics snapshot invariant violated: latency.count="
                  << m.latency.count << " settled=" << m.Settled()
                  << " admitted=" << m.admitted << "\n";
        std::abort();
      }
    }
  });

  std::vector<std::future<service::QueryResponse>> futures;
  futures.reserve(requests.size());
  size_t shed = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    // Shut down with the tail of the workload still in flight: roughly the
    // last quarter of submissions races Shutdown() and gets cancelled,
    // shed, or finishes under the wire.
    if (i == requests.size() - requests.size() / 4) {
      psi_service.Shutdown();
    }
    auto future = psi_service.Submit(requests[i]);
    if (future.has_value()) {
      futures.push_back(std::move(*future));
    } else {
      ++shed;
    }
  }
  psi_service.Shutdown();

  std::map<std::string, uint64_t> outcomes;
  outcomes["rejected"] = shed;
  for (auto& future : futures) {
    ++outcomes[service::RequestStatusName(future.get().status)];
  }
  poll.store(false, std::memory_order_release);
  poller.join();
  return outcomes;
}

/// The default --chaos cocktail: every fault site armed with deterministic
/// schedules dense enough that a 200-request run drives each degradation
/// policy through at least one entry (and usually an exit).
constexpr char kDefaultChaosSpec[] =
    "service.admission.shed=every:7,"
    "service.worker.stall=prob:0.05:7@2,"
    "cache.lookup.miss=every:5,"
    "cache.lookup.poison=every:3,"
    "smart.predict.flip=every:4,"
    "smart.plan.mispredict=every:6,"
    "smart.preempt.expire=every:5,"
    "threadpool.task.start=prob:0.02:11@1";

/// Chaos run: saturation offering against a degradation-enabled service
/// with the injector armed, an invariant-checking stats poller alongside,
/// and end-to-end verification afterwards. Returns the process exit code.
int ChaosRun(const graph::Graph& g,
             const std::vector<service::QueryRequest>& requests,
             service::ServiceOptions options, const std::string& spec,
             bool default_cocktail) {
  // Small windows and cooldowns so the policies visibly cycle within a
  // modest request count.
  options.degradation.enabled = true;
  options.degradation.max_shed_retries = 3;
  options.degradation.retry_backoff_ms = 0.2;
  options.degradation.timeout_window = 16;
  options.degradation.timeout_rate_threshold = 0.4;
  options.degradation.degraded_cooldown = 16;
  options.degradation.poison_window = 8;
  options.degradation.mismatch_rate_threshold = 0.2;
  options.degradation.cache_bypass_cooldown = 16;

  util::FaultInjector& injector = util::FaultInjector::Global();
  const util::Status armed = injector.ArmFromSpec(spec);
  if (!armed.ok()) {
    std::cerr << "bad --faults spec: " << armed.ToString() << "\n";
    return 2;
  }

  service::PsiService psi_service(g, options);

  std::atomic<bool> poll{true};
  std::atomic<bool> invariant_violated{false};
  std::thread poller([&] {
    while (poll.load(std::memory_order_acquire)) {
      const service::ServiceStats stats = psi_service.Stats();
      const auto& m = stats.metrics;
      if (m.latency.count > m.Settled() || m.Settled() > m.admitted ||
          m.retries > m.admitted) {
        std::cerr << "metrics invariant violated: latency.count="
                  << m.latency.count << " settled=" << m.Settled()
                  << " admitted=" << m.admitted << " retries=" << m.retries
                  << "\n";
        invariant_violated.store(true, std::memory_order_release);
        return;
      }
    }
  });

  // Saturation offering, in rounds. One round normally completes the whole
  // degradation cycle, but on slow machines (TSan CI) most submissions shed
  // and too few requests settle to burn through the cooldowns — so with the
  // default cocktail the same workload is re-offered (bounded) until
  // degraded-mode entry + exit and a shed retry have all been observed.
  constexpr int kMaxRounds = 6;
  size_t shed = 0;
  size_t total_admitted = 0;
  size_t degraded_served = 0;
  std::map<std::string, uint64_t> outcomes;
  int rounds = 0;
  util::WallTimer wall;
  for (int round = 0; round < kMaxRounds; ++round) {
    ++rounds;
    std::vector<std::future<service::QueryResponse>> futures;
    futures.reserve(requests.size());
    for (const service::QueryRequest& request : requests) {
      // Submit itself already retries shed admissions (degradation
      // policy), so a nullopt here means retries were exhausted.
      auto future = psi_service.Submit(request);
      if (future.has_value()) {
        futures.push_back(std::move(*future));
      } else {
        ++shed;
      }
    }
    total_admitted += futures.size();
    for (auto& future : futures) {
      const service::QueryResponse response = future.get();
      ++outcomes[service::RequestStatusName(response.status)];
      if (response.served_degraded) ++degraded_served;
    }
    if (!default_cocktail || injector.TotalFires() == 0) break;
    const service::MetricsSnapshot m = psi_service.Stats().metrics;
    if (m.degraded_entries > 0 && m.degraded_exits > 0 && m.retries > 0) {
      break;
    }
  }
  const double wall_seconds = wall.Seconds();
  const service::ServiceStats stats = psi_service.Stats();
  poll.store(false, std::memory_order_release);
  poller.join();
  const auto site_stats = injector.AllStats();
  const uint64_t fires = injector.TotalFires();
  injector.DisarmAll();

  // --- Report -------------------------------------------------------------
  const auto& m = stats.metrics;
  std::cout << "--- chaos (" << requests.size() << " requests, " << rounds
            << (rounds == 1 ? " round" : " rounds") << ") ---\n"
            << "wall: " << wall_seconds << " s, shed after retries: " << shed
            << ", served degraded: " << degraded_served << "\n"
            << m.ToString() << "\n"
            << "gauges: degraded_mode=" << stats.degraded_mode
            << " cache_bypass=" << stats.cache_bypass
            << " faults_injected=" << stats.faults_injected << "\n";
  for (const auto& [site, s] : site_stats) {
    std::cout << "fault " << site << ": hits=" << s.hits
              << " fires=" << s.fires << "\n";
  }
  for (const auto& [status, count] : outcomes) {
    std::cout << status << ": " << count << "\n";
  }

  // --- Verification -------------------------------------------------------
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    if (!ok) {
      std::cerr << "CHAOS CHECK FAILED: " << what << "\n";
      ++failures;
    }
  };
  check(!invariant_violated.load(std::memory_order_acquire),
        "metrics snapshot invariants held in every poll");
  check(m.retries <= m.admitted, "retries <= admitted");
  check(m.Settled() <= m.admitted, "Settled() <= admitted");
  check(m.Settled() == total_admitted,
        "every admitted request settled exactly once");
  if (fires > 0 && default_cocktail) {
    // The default cocktail is engineered to drive every degradation policy
    // through at least one cycle; a user-supplied --faults schedule need
    // not, so for those only the universal invariants above are binding.
    check(m.degraded_entries > 0, "degraded mode was entered");
    check(m.degraded_exits > 0, "degraded mode was exited");
    check(m.retries > 0, "shed retries were exercised");
  } else if (fires == 0) {
    std::cout << "(no faults fired — PSI_ENABLE_FAULT_INJECTION=OFF build; "
                 "degradation checks skipped)\n";
  }
  if (failures == 0) std::cout << "chaos run OK\n";
  return failures == 0 ? 0 : 1;
}

/// Hot-swap storm: a swapper thread republishes the served graph while the
/// main thread offers the workload at saturation (shed submissions retried,
/// so every request is eventually admitted). The catalog.publish fault site
/// is armed by default, so a fraction of publishes abort after the build —
/// the previous snapshot must keep serving through those. Verifies the
/// tentpole invariants end-to-end and returns the process exit code.
int SwapStormRun(const graph::Graph& g,
                 const std::vector<service::QueryRequest>& requests,
                 const service::ServiceOptions& options,
                 const std::string& spec, size_t swaps_target) {
  util::FaultInjector& injector = util::FaultInjector::Global();
  const util::Status armed = injector.ArmFromSpec(spec);
  if (!armed.ok()) {
    std::cerr << "bad --faults spec: " << armed.ToString() << "\n";
    return 2;
  }

  service::GraphCatalog catalog;
  service::SnapshotBuildOptions build;
  build.signature_method = options.engine.signature_method;
  build.signature_depth = options.engine.signature_depth;
  build.signature_decay = options.engine.signature_decay;

  // Every generation ever published: version (for the response check) and a
  // weak_ptr (for the memory-release check).
  std::vector<uint64_t> published_versions;
  std::vector<std::weak_ptr<const service::GraphSnapshot>> generations;

  // Seed snapshot; retried because the armed injector may fail the very
  // first publish.
  for (int attempt = 0; attempt < 16 && generations.empty(); ++attempt) {
    auto published =
        catalog.BuildAndPublish(options.default_graph, g.Clone(), build);
    if (published.ok()) {
      published_versions.push_back(published.value()->version());
      generations.emplace_back(published.value());
    }
  }
  if (generations.empty()) {
    std::cerr << "could not publish the seed snapshot\n";
    return 1;
  }

  service::PsiService psi_service(&catalog, options);

  std::atomic<bool> swapping{true};
  uint64_t swap_failures = 0;
  std::vector<uint64_t> swapped_versions;
  std::vector<std::weak_ptr<const service::GraphSnapshot>> swapped_generations;
  std::thread swapper([&] {
    for (size_t i = 0; i < swaps_target; ++i) {
      auto published =
          catalog.BuildAndPublish(options.default_graph, g.Clone(), build);
      if (published.ok()) {
        swapped_versions.push_back(published.value()->version());
        swapped_generations.emplace_back(published.value());
      } else {
        ++swap_failures;
      }
    }
    swapping.store(false, std::memory_order_release);
  });

  // Invariant poller: the metrics contract and the cross-snapshot cache
  // tripwire must hold in *every* snapshot taken mid-swap, not just at the
  // end of the run.
  std::atomic<bool> poll{true};
  std::atomic<bool> invariant_violated{false};
  std::thread poller([&] {
    while (poll.load(std::memory_order_acquire)) {
      const service::ServiceStats stats = psi_service.Stats();
      const auto& m = stats.metrics;
      if (m.latency.count > m.Settled() || m.Settled() > m.admitted ||
          stats.cache.epoch_drops != 0) {
        std::cerr << "swap-storm invariant violated mid-run: latency.count="
                  << m.latency.count << " settled=" << m.Settled()
                  << " admitted=" << m.admitted
                  << " epoch_drops=" << stats.cache.epoch_drops << "\n";
        invariant_violated.store(true, std::memory_order_release);
        return;
      }
    }
  });

  // Saturation offering, re-offering the workload until the swapper is
  // done so the service is under load for every single swap. Each round
  // drains before re-offering to bound the in-flight future count.
  std::map<std::string, uint64_t> outcomes;
  std::set<uint64_t> response_versions;
  size_t admitted = 0;
  size_t zero_version_responses = 0;
  size_t rounds = 0;
  util::WallTimer wall;
  for (;;) {
    // Sampled before the round: when the swapper was already done at round
    // start, this round ran entirely against the final generation, so the
    // run is guaranteed to span at least two versions (given one swap).
    const bool swapper_done = !swapping.load(std::memory_order_acquire);
    ++rounds;
    std::vector<std::future<service::QueryResponse>> futures;
    futures.reserve(requests.size());
    for (const service::QueryRequest& request : requests) {
      for (;;) {
        auto future = psi_service.Submit(request);
        if (future.has_value()) {
          futures.push_back(std::move(*future));
          ++admitted;
          break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    for (auto& future : futures) {
      const service::QueryResponse response = future.get();
      ++outcomes[service::RequestStatusName(response.status)];
      if (response.snapshot_version == 0) ++zero_version_responses;
      response_versions.insert(response.snapshot_version);
    }
    if (swapper_done) break;
  }
  swapper.join();
  published_versions.insert(published_versions.end(), swapped_versions.begin(),
                            swapped_versions.end());
  generations.insert(generations.end(), swapped_generations.begin(),
                     swapped_generations.end());
  const double wall_seconds = wall.Seconds();

  const service::ServiceStats stats = psi_service.Stats();
  poll.store(false, std::memory_order_release);
  poller.join();
  const uint64_t fires = injector.TotalFires();
  const auto publish_site_stats =
      injector.Stats(util::faults::kCatalogPublish);
  injector.DisarmAll();

  // Quiesce and retire the served name so even the final generation should
  // release: after this, nothing in the process holds a snapshot ref.
  psi_service.Shutdown();
  catalog.Retire(options.default_graph);

  // --- Report -------------------------------------------------------------
  const auto& m = stats.metrics;
  std::cout << "--- swap-storm (" << requests.size() << " requests/round, "
            << rounds << (rounds == 1 ? " round, " : " rounds, ")
            << published_versions.size() << " publishes, " << swap_failures
            << " injected publish failures) ---\n"
            << "wall: " << wall_seconds << " s\n"
            << m.ToString() << "\n"
            << "cache: hits=" << stats.cache.hits
            << " misses=" << stats.cache.misses
            << " epoch_drops=" << stats.cache.epoch_drops << "\n"
            << "response versions: " << response_versions.size()
            << " distinct across " << admitted << " admitted\n";
  for (const auto& [status, count] : outcomes) {
    std::cout << status << ": " << count << "\n";
  }

  // --- Verification -------------------------------------------------------
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    if (!ok) {
      std::cerr << "SWAP-STORM CHECK FAILED: " << what << "\n";
      ++failures;
    }
  };
  check(!invariant_violated.load(std::memory_order_acquire),
        "metrics + epoch_drops invariants held in every mid-run poll");
  check(m.Settled() == admitted, "every admitted request settled exactly once");
  check(zero_version_responses == 0,
        "every response reported a snapshot version");
  check(std::all_of(response_versions.begin(), response_versions.end(),
                    [&](uint64_t v) {
                      return std::find(published_versions.begin(),
                                       published_versions.end(),
                                       v) != published_versions.end();
                    }),
        "every response version matches a published generation");
  check(stats.cache.epoch_drops == 0,
        "zero cross-snapshot cache hits (epoch_drops == 0)");
  check(m.not_found == 0, "failed publishes never unserved the name");
  check(stats.metrics.snapshot_publishes == published_versions.size(),
        "publish counter matches successful publishes");
  check(stats.metrics.snapshot_swaps == published_versions.size() - 1,
        "swap counter matches republishes");
  check(stats.metrics.snapshot_publish_failures == publish_site_stats.fires,
        "publish-failure counter matches injected aborts");
  if (swapped_versions.size() > 1) {
    check(response_versions.size() > 1,
          "load actually spanned more than one generation");
  }
  // Memory release: with the service quiesced and the name retired, every
  // generation — including the last — must be gone. Pins drop before the
  // response future is fulfilled, so no grace period is needed.
  const size_t alive = static_cast<size_t>(
      std::count_if(generations.begin(), generations.end(),
                    [](const auto& weak) { return !weak.expired(); }));
  check(alive == 0, "all retired generations released their memory");
  for (const auto& entry : catalog.List()) {
    check(entry.pins == 0, "pin gauge drained to zero");
  }
  if (fires > 0) {
    check(swap_failures > 0, "injected publish failures were observed");
  } else {
    std::cout << "(no faults fired — PSI_ENABLE_FAULT_INJECTION=OFF build; "
                 "publish-failure checks skipped)\n";
  }
  if (failures == 0) std::cout << "swap-storm OK\n";
  return failures == 0 ? 0 : 1;
}

/// Sharded hot-swap storm: same offered-load/swapper/poller topology as
/// SwapStormRun, but the swapper republishes whole K-shard GENERATIONS and
/// the armed fault site is catalog.shard_publish — which fires per shard,
/// so an injected abort tears the build mid-generation after some shard
/// snapshots already exist. The checks pin down the sharded tentpole
/// invariants: aborted publishes stay invisible (the old generation keeps
/// serving, nothing torn is ever pinned), every response reports a
/// published generation id, settlement is exact, every settled request
/// fanned out to all K shards, pins drain, and retired generations release
/// their memory.
int ShardedSwapStormRun(const graph::Graph& g,
                        const std::vector<service::QueryRequest>& requests,
                        const shard::ShardedServiceOptions& options,
                        const std::string& spec, size_t swaps_target) {
  util::FaultInjector& injector = util::FaultInjector::Global();
  const util::Status armed = injector.ArmFromSpec(spec);
  if (!armed.ok()) {
    std::cerr << "bad --faults spec: " << armed.ToString() << "\n";
    return 2;
  }

  shard::ShardedCatalog catalog;
  const shard::ShardedCatalog::BuildOptions& build = options.build;

  std::vector<uint64_t> published_generations;
  std::vector<std::weak_ptr<const shard::ShardedGeneration>> generations;

  // Seed generation; retried because the armed injector may abort the very
  // first publish (and with the per-shard site, possibly several in a row).
  for (int attempt = 0; attempt < 64 && generations.empty(); ++attempt) {
    auto published =
        catalog.BuildAndPublish(options.default_graph, g.Clone(), build);
    if (published.ok()) {
      published_generations.push_back(published.value()->generation());
      generations.emplace_back(published.value());
    }
  }
  if (generations.empty()) {
    std::cerr << "could not publish the seed generation\n";
    return 1;
  }

  shard::ShardedPsiService psi_service(&catalog, options);

  std::atomic<bool> swapping{true};
  uint64_t swap_failures = 0;
  std::vector<uint64_t> swapped_generation_ids;
  std::vector<std::weak_ptr<const shard::ShardedGeneration>> swapped_generations;
  std::thread swapper([&] {
    for (size_t i = 0; i < swaps_target; ++i) {
      auto published =
          catalog.BuildAndPublish(options.default_graph, g.Clone(), build);
      if (published.ok()) {
        swapped_generation_ids.push_back(published.value()->generation());
        swapped_generations.emplace_back(published.value());
      } else {
        ++swap_failures;
      }
    }
    swapping.store(false, std::memory_order_release);
  });

  // Invariant poller: flat metrics contract plus the per-shard one — a
  // shard never settles more subtasks than were fanned out to it.
  std::atomic<bool> poll{true};
  std::atomic<bool> invariant_violated{false};
  std::thread poller([&] {
    while (poll.load(std::memory_order_acquire)) {
      const service::ServiceStats stats = psi_service.Stats();
      const auto& m = stats.metrics;
      bool shard_ok = true;
      for (const auto& sh : m.shards) {
        shard_ok = shard_ok && sh.settled <= sh.admitted;
      }
      if (m.latency.count > m.Settled() || m.Settled() > m.admitted ||
          !shard_ok) {
        std::cerr << "sharded swap-storm invariant violated mid-run: "
                  << "latency.count=" << m.latency.count
                  << " settled=" << m.Settled() << " admitted=" << m.admitted
                  << " shard_ok=" << shard_ok << "\n";
        invariant_violated.store(true, std::memory_order_release);
        return;
      }
    }
  });

  // Saturation offering until the swapper is done (same round structure
  // and swapper_done sampling as the single-engine storm).
  std::map<std::string, uint64_t> outcomes;
  std::set<uint64_t> response_generations;
  size_t admitted = 0;
  size_t zero_version_responses = 0;
  size_t rounds = 0;
  util::WallTimer wall;
  for (;;) {
    const bool swapper_done = !swapping.load(std::memory_order_acquire);
    ++rounds;
    std::vector<std::future<service::QueryResponse>> futures;
    futures.reserve(requests.size());
    for (const service::QueryRequest& request : requests) {
      for (;;) {
        auto future = psi_service.Submit(request);
        if (future.has_value()) {
          futures.push_back(std::move(*future));
          ++admitted;
          break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    for (auto& future : futures) {
      const service::QueryResponse response = future.get();
      ++outcomes[service::RequestStatusName(response.status)];
      if (response.snapshot_version == 0) ++zero_version_responses;
      response_generations.insert(response.snapshot_version);
    }
    if (swapper_done) break;
  }
  swapper.join();
  published_generations.insert(published_generations.end(),
                               swapped_generation_ids.begin(),
                               swapped_generation_ids.end());
  generations.insert(generations.end(), swapped_generations.begin(),
                     swapped_generations.end());
  const double wall_seconds = wall.Seconds();

  const service::ServiceStats stats = psi_service.Stats();
  poll.store(false, std::memory_order_release);
  poller.join();
  const uint64_t fires = injector.TotalFires();
  const auto publish_site_stats =
      injector.Stats(util::faults::kCatalogShardPublish);
  injector.DisarmAll();

  psi_service.Shutdown();
  catalog.Retire(options.default_graph);

  // --- Report -------------------------------------------------------------
  const auto& m = stats.metrics;
  uint64_t total_forwards = 0;
  for (const auto& sh : m.shards) total_forwards += sh.cross_shard_forwards;
  std::cout << "--- sharded swap-storm (" << options.build.partition.num_shards
            << " shards, " << requests.size() << " requests/round, " << rounds
            << (rounds == 1 ? " round, " : " rounds, ")
            << published_generations.size() << " generations, "
            << swap_failures << " injected publish failures) ---\n"
            << "wall: " << wall_seconds
            << " s, cross-shard forwards: " << total_forwards << "\n"
            << m.ToString() << "\n"
            << "response generations: " << response_generations.size()
            << " distinct across " << admitted << " admitted\n";
  for (const auto& [status, count] : outcomes) {
    std::cout << status << ": " << count << "\n";
  }

  // --- Verification -------------------------------------------------------
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    if (!ok) {
      std::cerr << "SHARDED SWAP-STORM CHECK FAILED: " << what << "\n";
      ++failures;
    }
  };
  check(!invariant_violated.load(std::memory_order_acquire),
        "flat + per-shard metrics invariants held in every mid-run poll");
  check(m.Settled() == admitted, "every admitted request settled exactly once");
  check(zero_version_responses == 0,
        "every response reported a generation id");
  check(std::all_of(response_generations.begin(), response_generations.end(),
                    [&](uint64_t v) {
                      return std::find(published_generations.begin(),
                                       published_generations.end(),
                                       v) != published_generations.end();
                    }),
        "every response generation matches a published one (never a torn "
        "abort)");
  check(m.not_found == 0, "failed publishes never unserved the name");
  check(m.shards.size() == options.build.partition.num_shards,
        "per-shard counters sized to K");
  const uint64_t fanouts = m.shards.empty() ? 0 : m.shards[0].settled;
  for (const auto& sh : m.shards) {
    check(sh.settled == sh.admitted, "per-shard subtasks settled exactly");
    check(sh.settled == fanouts, "fan-out symmetric across shards");
  }
  check(fanouts == m.Settled(),
        "every settled request fanned out to every shard");
  check(m.snapshot_publishes == published_generations.size(),
        "publish counter matches successful generation publishes");
  check(m.snapshot_swaps == published_generations.size() - 1,
        "swap counter matches republishes");
  check(m.snapshot_publish_failures == publish_site_stats.fires,
        "publish-failure counter matches injected mid-generation aborts");
  if (swapped_generation_ids.size() > 1) {
    check(response_generations.size() > 1,
          "load actually spanned more than one generation");
  }
  // Memory release: a generation holds all K shard snapshots, so one live
  // weak_ptr here would mean K leaked signature matrices.
  const size_t alive = static_cast<size_t>(
      std::count_if(generations.begin(), generations.end(),
                    [](const auto& weak) { return !weak.expired(); }));
  check(alive == 0, "all retired generations released their memory");
  for (const auto& entry : catalog.List()) {
    check(entry.pins == 0, "pin gauge drained to zero");
  }
  if (fires > 0) {
    check(swap_failures > 0, "injected publish failures were observed");
  } else {
    std::cout << "(no faults fired — PSI_ENABLE_FAULT_INJECTION=OFF build; "
                 "publish-failure checks skipped)\n";
  }
  if (failures == 0) std::cout << "sharded swap-storm OK\n";
  return failures == 0 ? 0 : 1;
}

void PrintReport(const char* title, const RunReport& report) {
  const auto& m = report.stats.metrics;
  std::cout << "--- " << title << " ---\n"
            << "wall: " << report.wall_seconds << " s, throughput: "
            << report.Throughput() << " q/s\n"
            << m.ToString() << "\n"
            << "cache: entries=" << report.stats.cache_entries
            << " hits=" << report.stats.cache.hits
            << " misses=" << report.stats.cache.misses << " (hit rate "
            << report.stats.cache.HitRate() << ")\n";
}

/// Sharded runs have no prediction cache; the metrics ToString already
/// carries the per-shard admitted/settled/forwards lines.
void PrintShardReport(const char* title, const RunReport& report) {
  std::cout << "--- " << title << " ---\n"
            << "wall: " << report.wall_seconds << " s, throughput: "
            << report.Throughput() << " q/s\n"
            << report.stats.metrics.ToString() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Strict parsing: anything not on these lists is an error, not a silent
  // no-op. (The old parser swallowed unknown "--x value" pairs, so e.g.
  // --shards before this tool grew sharding quietly changed nothing.)
  tools::ArgSpec arg_spec;
  arg_spec.switches = {"--baseline", "--stress", "--chaos", "--swap-storm"};
  arg_spec.options = {"--generate",        "--requests", "--qps",
                      "--workers",         "--queue",    "--query-size",
                      "--unique",          "--deadline-ms-min",
                      "--deadline-ms-max", "--method",   "--depth",
                      "--seed",            "--waves",    "--faults",
                      "--swaps",           "--shards",   "--search-threads",
                      "--restarts",        "--batch"};
  arg_spec.max_positional = 1;
  const tools::ParsedArgs args = tools::ParseArgs(argc, argv, arg_spec);
  if (!args.ok()) {
    std::cerr << "psi_loadgen: " << args.error << "\n";
    Usage();
    return 2;
  }
  const std::string graph_path =
      args.positional.empty() ? std::string() : args.positional[0];
  auto get = [&](const std::string& key, const std::string& fallback) {
    return args.Get(key, fallback);
  };
  const uint64_t seed = std::strtoull(get("--seed", "42").c_str(), nullptr, 10);

  // --- Graph --------------------------------------------------------------
  graph::Graph g;
  if (args.Has("--generate")) {
    size_t nodes = 0, edges = 0, labels = 8;
    if (std::sscanf(get("--generate", "").c_str(), "%zu,%zu,%zu", &nodes,
                    &edges, &labels) < 2) {
      std::cerr << "bad --generate spec (want N,M[,L])\n";
      return 2;
    }
    util::Rng rng(seed);
    graph::LabelConfig label_config;
    label_config.num_labels = labels;
    util::WallTimer timer;
    g = graph::RelabelWithHomophily(
        graph::ErdosRenyi(nodes, edges, label_config, rng), 0.6, 2, rng);
    std::cerr << "Generated graph in " << timer.Seconds() << " s\n";
  } else if (!graph_path.empty()) {
    auto loaded = graph::LoadLgFile(graph_path);
    if (!loaded.ok()) {
      std::cerr << loaded.status().ToString() << "\n";
      return 1;
    }
    g = std::move(loaded).value();
  } else {
    Usage();
    return 2;
  }
  std::cerr << "Graph: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " edges, " << g.num_labels() << " labels\n";

  // --- Workload -----------------------------------------------------------
  service::WorkloadSpec spec;
  spec.count = std::strtoull(get("--requests", "200").c_str(), nullptr, 10);
  const size_t unique =
      std::strtoull(get("--unique", "0").c_str(), nullptr, 10);
  const size_t total = spec.count;
  if (unique > 0) spec.count = std::min(spec.count, unique);
  spec.query_size =
      std::strtoull(get("--query-size", "5").c_str(), nullptr, 10);
  spec.deadline_ms_min = std::atof(get("--deadline-ms-min", "0").c_str());
  spec.deadline_ms_max = std::atof(get("--deadline-ms-max", "0").c_str());
  const bool stress = args.Has("--stress");
  if (stress && spec.deadline_ms_max <= 0.0) {
    // Tight deadline mix: some requests finish, many expire mid-search, so
    // the timeout path races the shutdown-cancellation path.
    spec.deadline_ms_min = 0.05;
    spec.deadline_ms_max = 5.0;
  }
  const std::string method = get("--method", "smart");
  if (method == "optimistic") {
    spec.method = service::Method::kOptimistic;
  } else if (method == "pessimistic") {
    spec.method = service::Method::kPessimistic;
  } else if (method != "smart") {
    std::cerr << "unknown method " << method << "\n";
    return 2;
  }
  util::Rng workload_rng(seed ^ 0x10adULL);
  std::vector<service::QueryRequest> requests =
      service::ExtractWorkload(g, spec, workload_rng);
  if (requests.empty()) {
    std::cerr << "could not extract any queries\n";
    return 1;
  }
  // Top up by cycling (covers both --unique cycling and extraction
  // shortfalls).
  const size_t distinct = requests.size();
  for (size_t i = requests.size(); i < total; ++i) {
    service::QueryRequest copy = requests[i % distinct];
    copy.id = i + 1;
    requests.push_back(std::move(copy));
  }
  std::cerr << "Workload: " << requests.size() << " requests over " << distinct
            << " distinct queries, query size " << spec.query_size << "\n";

  // --- Offered load -------------------------------------------------------
  service::ServiceOptions options;
  options.num_workers =
      std::strtoull(get("--workers", "8").c_str(), nullptr, 10);
  options.max_queue_depth =
      std::strtoull(get("--queue", "256").c_str(), nullptr, 10);
  options.engine.signature_depth = static_cast<uint32_t>(
      std::strtoul(get("--depth", "2").c_str(), nullptr, 10));
  if (args.Has("--search-threads")) {
    const std::string raw = get("--search-threads", "1");
    char* end = nullptr;
    options.search_threads = std::strtoull(raw.c_str(), &end, 10);
    if (end == raw.c_str() || *end != '\0' || options.search_threads == 0) {
      std::cerr << "psi_loadgen: --search-threads wants a positive integer, "
                   "got '" << raw << "'\n";
      return 2;
    }
  }
  if (args.Has("--restarts")) {
    const std::string raw = get("--restarts", "off");
    if (raw == "on") {
      options.search_restarts = true;
    } else if (raw != "off") {
      std::cerr << "psi_loadgen: --restarts wants on|off, got '" << raw
                << "'\n";
      return 2;
    }
  }
  const double qps = std::atof(get("--qps", "0").c_str());

  // --- Batched dispatch ---------------------------------------------------
  if (args.Has("--batch")) {
    const size_t batch_size =
        std::strtoull(get("--batch", "0").c_str(), nullptr, 10);
    if (batch_size == 0) {
      std::cerr << "psi_loadgen: --batch wants a positive batch size\n";
      return 2;
    }
    if (args.Has("--shards") || args.Has("--chaos") || stress ||
        args.Has("--swap-storm")) {
      std::cerr << "psi_loadgen: --batch offers plain batched load and does "
                   "not combine with --shards/--chaos/--stress/--swap-storm\n";
      return 2;
    }
    const RunReport batched = BatchedOfferLoad(g, requests, options,
                                               batch_size);
    const std::string title =
        "batched concurrent (batch " + std::to_string(batch_size) + ")";
    PrintReport(title.c_str(), batched);
    if (args.Has("--baseline")) {
      const RunReport sequential = OfferLoad(g, requests, options, /*qps=*/0.0);
      PrintReport("sequential Submit baseline", sequential);
      if (sequential.Throughput() > 0.0) {
        std::cout << "batching speedup at batch " << batch_size << ": "
                  << batched.Throughput() / sequential.Throughput() << "x\n";
      }
    }
    return 0;
  }

  // --- Sharded dispatch ---------------------------------------------------
  if (args.Has("--shards")) {
    const uint32_t shards = static_cast<uint32_t>(
        std::strtoul(get("--shards", "0").c_str(), nullptr, 10));
    if (shards == 0) {
      std::cerr << "psi_loadgen: --shards wants a positive shard count\n";
      return 2;
    }
    if (args.Has("--chaos") || stress) {
      std::cerr << "psi_loadgen: --chaos/--stress exercise single-engine "
                   "degradation paths and do not combine with --shards\n";
      return 2;
    }
    if (args.Has("--search-threads") || args.Has("--restarts")) {
      std::cerr << "psi_loadgen: --search-threads/--restarts tune the "
                   "single-node engine and cannot combine with --shards\n";
      return 2;
    }
    shard::ShardedServiceOptions soptions;
    soptions.num_workers = options.num_workers;
    soptions.max_queue_depth = options.max_queue_depth;
    soptions.build.partition.num_shards = shards;
    soptions.build.snapshot.signature_method = options.engine.signature_method;
    soptions.build.snapshot.signature_depth = options.engine.signature_depth;
    soptions.build.snapshot.signature_decay = options.engine.signature_decay;

    if (args.Has("--swap-storm")) {
      const size_t swaps = std::max<size_t>(
          1, std::strtoull(get("--swaps", "24").c_str(), nullptr, 10));
      // The per-shard site gets up to K hits per publish, so the default
      // period must exceed K or every single publish would abort. 3K+1
      // fails roughly one publish in three-to-four and never all of them.
      const std::string default_spec =
          "catalog.shard_publish=every:" + std::to_string(3 * shards + 1);
      return ShardedSwapStormRun(g, requests, soptions,
                                 get("--faults", default_spec), swaps);
    }

    const RunReport concurrent = ShardedOfferLoad(g, requests, soptions, qps);
    const std::string title =
        "sharded concurrent (" + std::to_string(shards) + " shards)";
    PrintShardReport(title.c_str(), concurrent);
    if (args.Has("--baseline")) {
      shard::ShardedServiceOptions serial = soptions;
      serial.num_workers = 1;
      const RunReport baseline =
          ShardedOfferLoad(g, requests, serial, /*qps=*/0.0);
      PrintShardReport("sharded serial baseline (1 worker)", baseline);
      if (baseline.Throughput() > 0.0) {
        std::cout << "speedup at " << soptions.num_workers << " workers: "
                  << concurrent.Throughput() / baseline.Throughput() << "x\n";
      }
    }
    return 0;
  }

  if (args.Has("--chaos")) {
    return ChaosRun(g, requests, options, get("--faults", kDefaultChaosSpec),
                    /*default_cocktail=*/!args.Has("--faults"));
  }

  if (args.Has("--swap-storm")) {
    const size_t swaps = std::max<size_t>(
        1, std::strtoull(get("--swaps", "24").c_str(), nullptr, 10));
    return SwapStormRun(g, requests, options,
                        get("--faults", "catalog.publish=every:3"), swaps);
  }

  if (stress) {
    const size_t waves =
        std::max<size_t>(1, std::strtoull(get("--waves", "4").c_str(),
                                          nullptr, 10));
    std::map<std::string, uint64_t> totals;
    util::WallTimer wall;
    for (size_t wave = 0; wave < waves; ++wave) {
      for (const auto& [status, count] : StressWave(g, requests, options)) {
        totals[status] += count;
      }
    }
    std::cout << "--- stress (" << waves << " waves, "
              << requests.size() << " requests each, deadlines "
              << spec.deadline_ms_min << ".." << spec.deadline_ms_max
              << " ms) ---\nwall: " << wall.Seconds() << " s\n";
    for (const auto& [status, count] : totals) {
      std::cout << status << ": " << count << "\n";
    }
    return 0;
  }

  const RunReport concurrent = OfferLoad(g, requests, options, qps);
  PrintReport("concurrent", concurrent);

  if (args.Has("--baseline")) {
    service::ServiceOptions serial = options;
    serial.num_workers = 1;
    const RunReport baseline = OfferLoad(g, requests, serial, /*qps=*/0.0);
    PrintReport("serial baseline (1 worker)", baseline);
    if (baseline.Throughput() > 0.0) {
      std::cout << "speedup at " << options.num_workers
                << " workers: " << concurrent.Throughput() / baseline.Throughput()
                << "x\n";
    }
  }
  return 0;
}
